//! The top-level tuning driver.
//!
//! Enumerates the outer loop the paper describes in §5.3 — gradient
//! accumulation steps `G` and pipeline shapes `(S, device assignment)` —
//! and for each runs intra-stage tuning (Pareto frontiers per layer
//! count) followed by inter-stage MILP selection. The best plan under the
//! space's own selector metric wins; its *true* Eq. 1 objective is
//! reported.
//!
//! Uniform-stage spaces (Megatron-LM, DeepSpeed, the Yuan-et-al.
//! heuristic of §3.3) bypass the MILP: every stage is forced to the same
//! layer count and optimization knobs, and the driver enumerates those
//! directly.

use std::time::Instant;

use mist_graph::{StageCandidate, StageConfigValues, StagePoint, StageRole};
use mist_hardware::{ClusterSpec, DeviceMesh, OpCostDb};
use mist_interference::InterferenceModel;
use mist_models::ModelSpec;
use mist_schedule::{mist_objective, StagePlan, StageStreams, TrainingPlan};
use mist_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::inter::{solve_inter_stage_dp_stats, InterSolveStats};
use crate::intra::{FrontierKey, IntraStageTuner, ParetoPoint};
use crate::seed::FrontierExport;
use crate::space::{CkptMode, SearchSpace};

/// Tuning statistics (Fig. 16's tuning-time study).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TuneStats {
    /// Configurations evaluated through the symbolic tapes.
    pub configs_evaluated: u64,
    /// Inter-stage MILP solves.
    pub milp_solves: u32,
    /// `(G, S)` outer-loop candidates examined.
    pub outer_candidates: u32,
    /// Wall-clock tuning seconds.
    pub elapsed_secs: f64,
    /// Seconds spent computing intra-stage frontiers (the pool fan-out;
    /// for uniform-stage spaces, the whole enumeration).
    pub intra_secs: f64,
    /// Seconds spent in inter-stage (MILP/DP) selection.
    pub inter_secs: f64,
}

/// The tuner's output: a plan plus its predicted performance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The chosen training plan.
    pub plan: TrainingPlan,
    /// Predicted iteration time under Eq. 1 (seconds).
    pub predicted_iteration: f64,
    /// Predicted throughput (samples/second).
    pub predicted_throughput: f64,
    /// Evaluated stream/memory decomposition per stage (for lowering to
    /// the simulator without re-analysis).
    pub stage_points: Vec<StagePoint>,
    /// Statistics of the tuning run.
    pub stats: TuneStats,
    /// Telemetry accumulated during this tune: the tuner's own counters
    /// plus, when the global collector is enabled, everything the
    /// instrumented library layers recorded (MILP nodes/pivots, cache
    /// hits, symbolic program sizes, ...).
    pub telemetry: MetricsSnapshot,
    /// Independently re-derived proof (through the `mist-irlint`
    /// interval framework) that the plan's memory claims fit the budget
    /// and its cost claims reproduce the reported objective. Checked
    /// again by `mist-service` before serving a cached plan and by
    /// `mist-cli verify-plan`.
    pub certificate: crate::PlanCertificate,
}

/// Top-level auto-tuner for one `(model, cluster, search space)`.
pub struct Tuner<'a> {
    model: &'a ModelSpec,
    cluster: &'a ClusterSpec,
    db: &'a OpCostDb,
    space: &'a SearchSpace,
    interference: &'a InterferenceModel,
    max_grad_accum: u32,
    max_outer: u32,
    budget: Option<f64>,
    seed: Option<Arc<FrontierExport>>,
    mono_prune: bool,
    compiled_eval: bool,
}

impl<'a> Tuner<'a> {
    /// Creates a tuner.
    pub fn new(
        model: &'a ModelSpec,
        cluster: &'a ClusterSpec,
        db: &'a OpCostDb,
        space: &'a SearchSpace,
        interference: &'a InterferenceModel,
    ) -> Self {
        Tuner {
            model,
            cluster,
            db,
            space,
            interference,
            max_grad_accum: 256,
            max_outer: u32::MAX,
            budget: None,
            seed: None,
            mono_prune: true,
            compiled_eval: true,
        }
    }

    /// Caps the gradient-accumulation sweep (tuning-time experiments).
    pub fn with_max_grad_accum(mut self, cap: u32) -> Self {
        self.max_grad_accum = cap;
        self
    }

    /// Caps the `(G, S)` outer-loop candidates examined — a
    /// deterministic work bound for interactive-QoS queries (the first
    /// `cap` candidates in sweep order are examined, independent of
    /// wall-clock and thread count).
    pub fn with_max_outer_candidates(mut self, cap: u32) -> Self {
        self.max_outer = cap.max(1);
        self
    }

    /// Overrides the per-GPU memory budget (bytes; defaults to the
    /// GPU's usable memory).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Installs a warm-start seed exported by a compatible earlier tune
    /// (see [`crate::seed`] for the soundness contract).
    pub fn with_frontier_seed(mut self, seed: Arc<FrontierExport>) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Enables or disables proof-licensed monotone pruning of the
    /// intra-stage sweep (default on). Pruning never changes the plan —
    /// it only skips rows a monotonicity proof shows are out of memory
    /// — so the toggle exists for A/B studies and byte-identity tests.
    pub fn with_monotone_prune(mut self, enabled: bool) -> Self {
        self.mono_prune = enabled;
        self
    }

    /// Enables or disables the compiled evaluation backend (default on):
    /// superinstruction-fused, direct-threaded kernels and the
    /// memory-first filtered sweep. The backend is bit-identical to the
    /// interpreter, so the plan never changes — the toggle exists for
    /// A/B studies and byte-identity tests.
    pub fn with_compiled_eval(mut self, enabled: bool) -> Self {
        self.compiled_eval = enabled;
        self
    }

    /// Gradient-accumulation candidates: divisors of the global batch.
    fn grad_accum_candidates(&self, global_batch: u64) -> Vec<u32> {
        let mut out = Vec::new();
        let mut g = 1u64;
        while g <= global_batch && g <= self.max_grad_accum as u64 {
            if global_batch.is_multiple_of(g) {
                out.push(g as u32);
            }
            g *= 2;
        }
        // Include non-power-of-two divisors for odd batch sizes.
        if !global_batch.is_power_of_two() {
            let mut d = 3u64;
            while d * d <= global_batch && d <= self.max_grad_accum as u64 {
                if global_batch.is_multiple_of(d) {
                    out.push(d as u32);
                }
                d += 2;
            }
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// Pipeline shapes: `S` equal sub-meshes covering the cluster.
    fn pipeline_shapes(&self) -> Vec<(u32, DeviceMesh)> {
        let total = self.cluster.total_gpus();
        let m = self.cluster.gpus_per_node;
        let mut out = Vec::new();
        for s in 1..=total.min(self.model.num_layers).min(64) {
            if !total.is_multiple_of(s) {
                continue;
            }
            let per = total / s;
            let mesh = if per >= m {
                if !per.is_multiple_of(m) {
                    continue;
                }
                DeviceMesh::new(per / m, m)
            } else {
                if !m.is_multiple_of(per) {
                    continue;
                }
                DeviceMesh::new(1, per)
            };
            out.push((s, mesh));
        }
        out
    }

    /// Builds the intra-stage tuner this driver sweeps through,
    /// applying the configured budget/seed overrides.
    fn make_intra(&self, global_batch: u64) -> IntraStageTuner<'a> {
        let mut intra = IntraStageTuner::new(
            self.model,
            self.cluster,
            self.db,
            self.space,
            self.interference,
            global_batch,
        );
        if let Some(budget) = self.budget {
            intra = intra.with_budget(budget);
        }
        if let Some(seed) = &self.seed {
            intra = intra.with_seed(Arc::clone(seed));
        }
        intra
            .with_monotone_prune(self.mono_prune)
            .with_compiled_eval(self.compiled_eval)
    }

    /// Runs the full hierarchical tuning loop.
    ///
    /// Returns `None` when no feasible plan exists in the space (the
    /// "all OOM" outcome of Fig. 2a).
    pub fn tune(&self, global_batch: u64) -> Option<TuneOutcome> {
        let intra = self.make_intra(global_batch);
        self.tune_on(&intra, global_batch)
    }

    /// Like [`Tuner::tune`], but also exports the computed intra-stage
    /// frontiers for warm-starting later, compatible tunes.
    pub fn tune_with_export(&self, global_batch: u64) -> Option<(TuneOutcome, FrontierExport)> {
        let intra = self.make_intra(global_batch);
        let out = self.tune_on(&intra, global_batch)?;
        Some((out, intra.export_frontiers()))
    }

    fn tune_on(&self, intra: &IntraStageTuner<'a>, global_batch: u64) -> Option<TuneOutcome> {
        assert!(global_batch >= 1);
        let start = Instant::now();
        let collector = mist_telemetry::global();
        let baseline = collector.snapshot();
        let _tune_span = mist_telemetry::span!("tuner.tune", global_batch = global_batch);
        let mut stats = TuneStats::default();
        let pool_stolen0 = intra.pool().tasks_stolen();
        let pool_executed0 = intra.pool().tasks_executed();
        let mut best: Option<(f64, Vec<ParetoPoint>, u32)> = None; // (selector, points, G)
                                                                   // Outer-level rejection attribution (sequential driver loop, so
                                                                   // plain accumulators are deterministic at any thread count).
        let mut out_of_budget: u64 = 0;
        let mut bound_pruned: u64 = 0;

        'outer: for g in self.grad_accum_candidates(global_batch) {
            for (s, mesh) in self.pipeline_shapes() {
                if stats.outer_candidates >= self.max_outer {
                    break 'outer; // Interactive-QoS work cap.
                }
                stats.outer_candidates += 1;
                let _outer_span = mist_telemetry::span!("tuner.outer", grad_accum = g, stages = s);
                let mut solve_stats = InterSolveStats::default();
                let solution = if self.space.uniform_stages {
                    let t_intra = Instant::now();
                    let sol = {
                        let _sweep_span =
                            mist_telemetry::span!("intra.sweep", grad_accum = g, stages = s);
                        self.solve_uniform(intra, g, s, mesh, global_batch)
                    };
                    stats.intra_secs += t_intra.elapsed().as_secs_f64();
                    sol
                } else {
                    let l = self.model.num_layers;
                    let max_layers = l - (s - 1);
                    let keys: Vec<FrontierKey> = (0..s)
                        .map(|i| FrontierKey {
                            mesh,
                            role: StageRole::of(i, s),
                            inflight: g.min(s - i),
                            grad_accum: g,
                        })
                        .collect();
                    // Dedupe before fanning out (first-seen order): stages
                    // often share a key, and two concurrent computations of
                    // the same frontier would bypass the cache — each
                    // unique key is computed exactly once, matching the
                    // sequential cache behavior at any thread count.
                    let mut unique: Vec<FrontierKey> = Vec::new();
                    for &k in &keys {
                        if !unique.contains(&k) {
                            unique.push(k);
                        }
                    }
                    let t_intra = Instant::now();
                    let computed = {
                        let _sweep_span =
                            mist_telemetry::span!("intra.sweep", grad_accum = g, stages = s);
                        // Batched: keys are processed in ascending
                        // in-flight levels so monotone pruning can skip
                        // provably-OOM rows of later levels.
                        intra.frontiers_batch(&unique, max_layers)
                    };
                    stats.intra_secs += t_intra.elapsed().as_secs_f64();
                    let frontier_handles: Vec<_> = keys
                        .iter()
                        .map(|k| {
                            let idx = unique
                                .iter()
                                .position(|u| u == k)
                                .expect("every key was deduped from `keys`");
                            std::sync::Arc::clone(&computed[idx])
                        })
                        .collect();
                    let refs: Vec<&Vec<Vec<ParetoPoint>>> =
                        frontier_handles.iter().map(|h| h.as_ref()).collect();
                    stats.milp_solves += 1;
                    let cutoff = best.as_ref().map_or(f64::INFINITY, |(b, _, _)| *b);
                    let _solve_span =
                        mist_telemetry::span!("inter.solve", stages = s, grad_accum = g);
                    let t_inter = Instant::now();
                    let sol = solve_inter_stage_dp_stats(
                        &refs,
                        l,
                        g,
                        self.space,
                        cutoff,
                        &mut solve_stats,
                    )
                    .map(|sol| {
                        (
                            sol.selector_objective,
                            sol.choices.into_iter().map(|c| c.point).collect::<Vec<_>>(),
                        )
                    });
                    stats.inter_secs += t_inter.elapsed().as_secs_f64();
                    bound_pruned += solve_stats.bound_pruned;
                    mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::DpSummary {
                        stages: s,
                        grad_accum: g,
                        states: solve_stats.dp_states,
                        bound_pruned: solve_stats.bound_pruned,
                        result: if sol.is_some() {
                            "solved".to_owned()
                        } else if solve_stats.cutoff_hit {
                            "cutoff".to_owned()
                        } else {
                            "infeasible".to_owned()
                        },
                    });
                    sol
                };
                let incumbent = best.as_ref().map(|(b, _, _)| *b);
                match solution {
                    Some((selector, points)) => {
                        let objective = {
                            let streams: Vec<StageStreams> = points
                                .iter()
                                .map(|p| StageStreams { t: p.t, d: p.d })
                                .collect();
                            mist_objective(&streams, g)
                        };
                        let takes_lead = incumbent.is_none_or(|b| selector < b);
                        mist_telemetry::journal_event(|| {
                            mist_telemetry::JournalEvent::OuterCandidate {
                                grad_accum: g,
                                stages: s,
                                outcome: if takes_lead {
                                    mist_telemetry::OuterOutcome::Incumbent
                                } else {
                                    mist_telemetry::OuterOutcome::Dominated
                                },
                                selector: Some(selector),
                                objective: Some(objective),
                                layers: points.iter().map(|p| p.config.layers).collect(),
                                incumbent,
                                bound: None,
                            }
                        });
                        if takes_lead {
                            mist_telemetry::journal_event(|| {
                                mist_telemetry::JournalEvent::Incumbent {
                                    grad_accum: g,
                                    stages: s,
                                    selector,
                                    objective,
                                }
                            });
                            best = Some((selector, points, g));
                        }
                    }
                    None => {
                        // A `None` under a finite cutoff is attributed to
                        // the budget when the solver saw the cutoff bite;
                        // otherwise the shape is genuinely infeasible.
                        let killed_by_cutoff = solve_stats.cutoff_hit;
                        if killed_by_cutoff {
                            out_of_budget += 1;
                        }
                        mist_telemetry::journal_event(|| {
                            mist_telemetry::JournalEvent::OuterCandidate {
                                grad_accum: g,
                                stages: s,
                                outcome: if killed_by_cutoff {
                                    mist_telemetry::OuterOutcome::OutOfBudget
                                } else {
                                    mist_telemetry::OuterOutcome::Infeasible
                                },
                                selector: solve_stats.best_rejected,
                                objective: None,
                                layers: Vec::new(),
                                incumbent,
                                bound: solve_stats.pruned_bound,
                            }
                        });
                    }
                }
            }
        }

        stats.configs_evaluated = intra.configs_evaluated();
        stats.elapsed_secs = start.elapsed().as_secs_f64();

        // Publish the tuner's own counters into the global registry, then
        // capture everything this tune added on top of the baseline. The
        // explicit inserts keep `telemetry` self-contained even when the
        // collector is disabled and the publish above was a no-op.
        let spec_hits = intra.specializer().cache_hits();
        let spec_misses = intra.specializer().cache_misses();
        let compile_hits = intra.specializer().compile_hits();
        let compile_misses = intra.specializer().compile_misses();
        let superinstrs = intra.specializer().superinstrs_high_water();
        let rej = intra.rejections();
        let (rej_oom, rej_nonfinite, rej_dominated, rej_mono_pruned) = (
            rej.oom.value(),
            rej.nonfinite.value(),
            rej.dominated.value(),
            rej.mono_pruned.value(),
        );
        let frontier_size = intra.frontier_size_high_water();
        let seeded = intra.seeded_frontiers();
        if seeded > 0 {
            // Published only when a warm-start seed actually fired, so
            // cold-run telemetry stays byte-identical to older builds.
            collector.counter_add("tuner.seeded_frontiers", seeded);
        }
        if rej_mono_pruned > 0 {
            // Same cold-stability rule: the key only appears when the
            // monotone pruner actually skipped rows.
            collector.counter_add("tuner.rejections.mono_pruned", rej_mono_pruned);
        }
        collector.counter_add("tuner.configs_evaluated", stats.configs_evaluated);
        collector.counter_add("tuner.outer_candidates", stats.outer_candidates as u64);
        collector.counter_add("tuner.inter_solves", stats.milp_solves as u64);
        collector.counter_add("tuner.rejections.oom", rej_oom);
        collector.counter_add("tuner.rejections.nonfinite", rej_nonfinite);
        collector.counter_add("tuner.rejections.dominated", rej_dominated);
        collector.counter_add("tuner.rejections.out_of_budget", out_of_budget);
        collector.counter_add("tuner.rejections.bound_pruned", bound_pruned);
        collector.gauge_set("frontier.size", frontier_size);
        collector.counter_add("specializer.cache_hits", spec_hits);
        collector.counter_add("specializer.cache_misses", spec_misses);
        if compile_hits + compile_misses > 0 {
            // Published only when the compiled backend actually ran, so
            // `--no-compiled-eval` telemetry stays byte-identical to
            // older builds (the same cold-stability rule as seeding and
            // monotone pruning above).
            collector.counter_add("tuner.compile.hits", compile_hits);
            collector.counter_add("tuner.compile.misses", compile_misses);
        }
        if superinstrs > 0.0 {
            collector.gauge_set("symbolic.program.superinstrs", superinstrs);
        }
        collector.gauge_set("tuner.elapsed_secs", stats.elapsed_secs);
        collector.gauge_set("tuner.intra_secs", stats.intra_secs);
        collector.gauge_set("tuner.inter_secs", stats.inter_secs);
        // `pool.workers` is set when a pool is constructed, which can
        // predate the collector being enabled — refresh it here.
        // (`pool.tasks_stolen` is published by the pool itself as steals
        // happen, so it is not re-published.)
        collector.gauge_set("pool.workers", intra.pool().threads() as f64);
        let mut telemetry = collector.snapshot_delta(&baseline);
        if seeded > 0 {
            telemetry
                .counters
                .entry("tuner.seeded_frontiers".to_owned())
                .or_insert(seeded);
        }
        if rej_mono_pruned > 0 {
            telemetry
                .counters
                .entry("tuner.rejections.mono_pruned".to_owned())
                .or_insert(rej_mono_pruned);
        }
        telemetry
            .counters
            .entry("tuner.configs_evaluated".to_owned())
            .or_insert(stats.configs_evaluated);
        telemetry
            .counters
            .entry("tuner.outer_candidates".to_owned())
            .or_insert(stats.outer_candidates as u64);
        telemetry
            .counters
            .entry("tuner.inter_solves".to_owned())
            .or_insert(stats.milp_solves as u64);
        telemetry
            .counters
            .entry("tuner.rejections.oom".to_owned())
            .or_insert(rej_oom);
        telemetry
            .counters
            .entry("tuner.rejections.nonfinite".to_owned())
            .or_insert(rej_nonfinite);
        telemetry
            .counters
            .entry("tuner.rejections.dominated".to_owned())
            .or_insert(rej_dominated);
        telemetry
            .counters
            .entry("tuner.rejections.out_of_budget".to_owned())
            .or_insert(out_of_budget);
        telemetry
            .counters
            .entry("tuner.rejections.bound_pruned".to_owned())
            .or_insert(bound_pruned);
        telemetry
            .gauges
            .entry("frontier.size".to_owned())
            .or_insert(frontier_size);
        telemetry
            .counters
            .entry("specializer.cache_hits".to_owned())
            .or_insert(spec_hits);
        telemetry
            .counters
            .entry("specializer.cache_misses".to_owned())
            .or_insert(spec_misses);
        if compile_hits + compile_misses > 0 {
            telemetry
                .counters
                .entry("tuner.compile.hits".to_owned())
                .or_insert(compile_hits);
            telemetry
                .counters
                .entry("tuner.compile.misses".to_owned())
                .or_insert(compile_misses);
        }
        if superinstrs > 0.0 {
            telemetry
                .gauges
                .entry("symbolic.program.superinstrs".to_owned())
                .or_insert(superinstrs);
        }
        telemetry
            .gauges
            .entry("tuner.elapsed_secs".to_owned())
            .or_insert(stats.elapsed_secs);
        telemetry
            .gauges
            .entry("tuner.intra_secs".to_owned())
            .or_insert(stats.intra_secs);
        telemetry
            .gauges
            .entry("tuner.inter_secs".to_owned())
            .or_insert(stats.inter_secs);
        // Pool stats are scheduling-dependent (like the wall-clocks above,
        // they vary run to run and with --threads): consumers comparing
        // outcomes for determinism must strip them alongside the timing
        // fields.
        telemetry
            .gauges
            .entry("pool.workers".to_owned())
            .or_insert(intra.pool().threads() as f64);
        telemetry
            .counters
            .entry("pool.tasks_stolen".to_owned())
            .or_insert(intra.pool().tasks_stolen() - pool_stolen0);
        telemetry
            .counters
            .entry("pool.tasks_executed".to_owned())
            .or_insert(intra.pool().tasks_executed() - pool_executed0);

        let (_, points, g) = best?;

        let streams: Vec<StageStreams> = points
            .iter()
            .map(|p| StageStreams { t: p.t, d: p.d })
            .collect();
        let predicted = mist_objective(&streams, g);
        let plan = TrainingPlan {
            grad_accum: g,
            stages: points
                .iter()
                .map(|p| StagePlan {
                    candidate: p.candidate,
                    config: p.config,
                })
                .collect(),
            global_batch,
        };
        debug_assert_eq!(plan.validate(), Ok(()));
        let stage_points: Vec<StagePoint> = points.iter().map(|p| p.point).collect();
        // Certify the winner through the independent interval-framework
        // path; a failure here is a tuner bug, not an input error.
        let cert = crate::certify_plan(
            self.model,
            self.cluster,
            self.db,
            self.interference,
            &plan,
            &stage_points,
            predicted,
            self.budget.unwrap_or(self.cluster.gpu.memory_bytes),
            self.space.overlap_aware,
            "tune",
        );
        debug_assert!(
            cert.ok(),
            "tune-time certificate failed: {:?}",
            cert.failures
        );
        Some(TuneOutcome {
            predicted_iteration: predicted,
            predicted_throughput: global_batch as f64 / predicted,
            stage_points,
            stats,
            telemetry,
            plan,
            certificate: cert.certificate,
        })
    }

    /// Uniform-stages solver: same layer count and same optimization
    /// knobs on every stage (§3.3's heuristic and the manual baselines).
    fn solve_uniform(
        &self,
        intra: &IntraStageTuner<'_>,
        g: u32,
        s: u32,
        mesh: DeviceMesh,
        _global_batch: u64,
    ) -> Option<(f64, Vec<ParetoPoint>)> {
        let l_total = self.model.num_layers;
        if !l_total.is_multiple_of(s) {
            return None;
        }
        let l = l_total / s;
        let mut best: Option<(f64, Vec<ParetoPoint>)> = None;
        for (dp, tp, b) in intra.parallelism_options(mesh, g) {
            for &zero in self.space.zero_levels() {
                for off in self.space.offload_combos() {
                    // Uniform checkpoint count: smallest that fits every
                    // stage (or the mode's fixed value).
                    let ckpt_candidates: Vec<u32> = match self.space.ckpt {
                        CkptMode::None => vec![0],
                        CkptMode::Full => vec![l],
                        CkptMode::Tuned => (0..=l).collect(),
                    };
                    let mut combo_feasible = false;
                    'ckpt: for ckpt in ckpt_candidates {
                        let mut points = Vec::with_capacity(s as usize);
                        for i in 0..s {
                            let cand = StageCandidate {
                                mesh,
                                dp,
                                tp,
                                micro_batch: b,
                                role: StageRole::of(i, s),
                            };
                            let cfg = StageConfigValues {
                                layers: l,
                                ckpt,
                                zero,
                                wo: off[0],
                                go: off[1],
                                oo: off[2],
                                ao: off[3],
                                inflight: g.min(s - i),
                            };
                            let p = intra.evaluate_config(&cand, &cfg);
                            if p.mem_peak > intra.budget() {
                                continue 'ckpt; // Try more recomputation.
                            }
                            points.push(p);
                        }
                        let streams: Vec<StageStreams> = points
                            .iter()
                            .map(|p| StageStreams { t: p.t, d: p.d })
                            .collect();
                        let selector = if self.space.imbalance_aware {
                            mist_objective(&streams, g)
                        } else {
                            let blended: Vec<StageStreams> = streams
                                .iter()
                                .map(|st| StageStreams {
                                    t: st.t + st.d / g as f64,
                                    d: 0.0,
                                })
                                .collect();
                            mist_objective(&blended, g)
                        };
                        if best.as_ref().is_none_or(|(bsel, _)| selector < *bsel) {
                            best = Some((selector, points));
                        }
                        combo_feasible = true;
                        break; // Minimal feasible ckpt found for this combo.
                    }
                    if !combo_feasible {
                        // No checkpoint count fits: same OOM semantics as
                        // the non-uniform per-row rejection.
                        intra.rejections().oom.inc();
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::{GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    fn setup(gpus: u32) -> (ModelSpec, ClusterSpec, OpCostDb, InterferenceModel) {
        (
            gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash),
            ClusterSpec::for_gpu_count(Platform::GcpL4, gpus),
            OpCostDb::new(GpuSpec::l4()),
            InterferenceModel::pcie_defaults(),
        )
    }

    #[test]
    fn tune_produces_valid_plan() {
        let (model, cluster, db, intf) = setup(2);
        let space = SearchSpace::mist();
        let tuner = Tuner::new(&model, &cluster, &db, &space, &intf).with_max_grad_accum(8);
        let out = tuner.tune(8).expect("1.3B on 2 GPUs must be tunable");
        assert_eq!(out.plan.validate(), Ok(()));
        assert_eq!(out.plan.global_batch, 8);
        assert_eq!(out.plan.total_layers(), model.num_layers);
        assert!(out.predicted_iteration > 0.0);
        assert!(out.stats.configs_evaluated > 0);
        assert_eq!(
            out.telemetry.counter("tuner.configs_evaluated"),
            out.stats.configs_evaluated
        );
        assert_eq!(
            out.telemetry.counter("tuner.outer_candidates"),
            out.stats.outer_candidates as u64
        );
        // The default sweep runs through the compiled backend — step
        // tables get built, residual specialization sees no traffic —
        // and both caches' activity is part of the self-contained
        // telemetry.
        assert!(out
            .telemetry
            .counters
            .contains_key("specializer.cache_hits"));
        assert_eq!(out.telemetry.counter("specializer.cache_misses"), 0);
        assert!(
            out.telemetry.counter("tuner.compile.misses") > 0,
            "tuning must have compiled at least one program"
        );
    }

    #[test]
    fn mist_space_beats_restricted_spaces() {
        let (model, cluster, db, intf) = setup(4);
        let intf2 = intf.clone();
        let mist_space = SearchSpace::mist();
        let mega_space = SearchSpace::megatron();
        let mist = Tuner::new(&model, &cluster, &db, &mist_space, &intf)
            .with_max_grad_accum(8)
            .tune(16)
            .expect("mist plan");
        let mega = Tuner::new(&model, &cluster, &db, &mega_space, &intf2)
            .with_max_grad_accum(8)
            .tune(16)
            .expect("megatron plan");
        assert!(
            mist.predicted_iteration <= mega.predicted_iteration * 1.001,
            "mist {} vs megatron {}",
            mist.predicted_iteration,
            mega.predicted_iteration
        );
    }

    #[test]
    fn grad_accum_candidates_divide_batch() {
        let (model, cluster, db, intf) = setup(2);
        let space = SearchSpace::mist();
        let tuner = Tuner::new(&model, &cluster, &db, &space, &intf);
        for b in [8u64, 48, 96] {
            for g in tuner.grad_accum_candidates(b) {
                assert_eq!(b % g as u64, 0, "G={g} must divide B={b}");
            }
        }
        assert!(tuner.grad_accum_candidates(48).contains(&3));
    }

    #[test]
    fn pipeline_shapes_cover_cluster() {
        let (model, cluster, db, intf) = setup(8);
        let space = SearchSpace::mist();
        let tuner = Tuner::new(&model, &cluster, &db, &space, &intf);
        let shapes = tuner.pipeline_shapes();
        assert!(shapes.iter().any(|&(s, _)| s == 1));
        assert!(shapes.iter().any(|&(s, _)| s == 8));
        for (s, mesh) in shapes {
            assert_eq!(s * mesh.total(), 8);
        }
    }

    #[test]
    fn uniform_space_still_finds_plans() {
        let (model, cluster, db, intf) = setup(4);
        let space = SearchSpace::deepspeed();
        let out = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune(8)
            .expect("deepspeed-style plan");
        assert_eq!(out.plan.validate(), Ok(()));
        // Uniform: all stages share layers/zero/offload.
        let first = &out.plan.stages[0].config;
        for st in &out.plan.stages {
            assert_eq!(st.config.layers, first.layers);
            assert_eq!(st.config.zero, first.zero);
        }
    }

    /// Warm-start soundness, end to end at the driver level: seeding a
    /// tune at a *different* global batch from an export must return a
    /// byte-identical plan/prediction while evaluating strictly fewer
    /// configurations, with at least one frontier family reused.
    #[test]
    fn warm_start_is_byte_identical_and_cheaper() {
        let (model, cluster, db, intf) = setup(2);
        let space = SearchSpace::mist();
        let (_, export) = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune_with_export(8)
            .expect("cold tune at B=8");
        assert!(!export.is_empty());

        let cold = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune(16)
            .expect("cold tune at B=16");
        let warm = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .with_frontier_seed(std::sync::Arc::new(export))
            .tune(16)
            .expect("warm tune at B=16");

        let plan_json = |o: &TuneOutcome| serde_json::to_string(&o.plan).unwrap();
        let points_json = |o: &TuneOutcome| serde_json::to_string(&o.stage_points).unwrap();
        assert_eq!(plan_json(&cold), plan_json(&warm));
        assert_eq!(points_json(&cold), points_json(&warm));
        assert_eq!(
            cold.predicted_iteration.to_bits(),
            warm.predicted_iteration.to_bits()
        );
        assert_eq!(
            cold.predicted_throughput.to_bits(),
            warm.predicted_throughput.to_bits()
        );
        assert!(
            warm.stats.configs_evaluated < cold.stats.configs_evaluated,
            "warm {} must evaluate strictly fewer configs than cold {}",
            warm.stats.configs_evaluated,
            cold.stats.configs_evaluated
        );
        assert!(
            warm.telemetry.counter("tuner.seeded_frontiers") > 0,
            "at least one frontier family must come from the seed"
        );
        assert!(
            !cold
                .telemetry
                .counters
                .contains_key("tuner.seeded_frontiers"),
            "cold runs must not grow new telemetry keys"
        );
    }

    /// Monotone pruning must be invisible in the output: the plan, the
    /// Pareto samples, and the predicted numbers are byte-identical with
    /// pruning on and off, while the pruned run provably evaluates fewer
    /// configurations. The workload is chosen so the memory budget is
    /// tight enough that whole `(tape, layer-count)` groups OOM at low
    /// in-flight and the proof-licensed floor extrapolates them away at
    /// higher in-flight.
    #[test]
    fn monotone_pruning_is_byte_identical_and_cheaper() {
        let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        let space = SearchSpace::mist();
        let run = |prune: bool| {
            Tuner::new(&model, &cluster, &db, &space, &intf)
                .with_max_grad_accum(8)
                .with_budget(3e9)
                .with_monotone_prune(prune)
                .tune(16)
                .expect("6.7B at a 3 GB budget must still be tunable")
        };
        let off = run(false);
        let on = run(true);

        assert_eq!(
            serde_json::to_string(&off.plan).unwrap(),
            serde_json::to_string(&on.plan).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&off.stage_points).unwrap(),
            serde_json::to_string(&on.stage_points).unwrap()
        );
        assert_eq!(
            off.predicted_iteration.to_bits(),
            on.predicted_iteration.to_bits()
        );
        assert_eq!(
            off.predicted_throughput.to_bits(),
            on.predicted_throughput.to_bits()
        );
        assert!(
            on.stats.configs_evaluated < off.stats.configs_evaluated,
            "pruned {} must evaluate strictly fewer configs than unpruned {}",
            on.stats.configs_evaluated,
            off.stats.configs_evaluated
        );
        assert!(
            on.telemetry.counter("tuner.rejections.mono_pruned") > 0,
            "the tight budget must trigger at least one proof-licensed skip"
        );
        assert!(
            !off.telemetry
                .counters
                .contains_key("tuner.rejections.mono_pruned"),
            "unpruned runs must not grow new telemetry keys"
        );
    }

    /// The compiled backend must be invisible in the output: plan,
    /// Pareto samples, predicted numbers, rejection attribution and the
    /// `configs_evaluated` accounting are all byte-identical with the
    /// backend on and off — the memory-first filter changes which rows
    /// pay for the 22-root program, never how rows are counted. The
    /// tight budget forces real OOM rejections through both the `∞`
    /// marker path and the mem-first filter.
    #[test]
    fn compiled_eval_is_byte_identical() {
        let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        let space = SearchSpace::mist();
        let run = |compiled: bool| {
            Tuner::new(&model, &cluster, &db, &space, &intf)
                .with_max_grad_accum(8)
                .with_budget(3e9)
                .with_compiled_eval(compiled)
                .tune(16)
                .expect("6.7B at a 3 GB budget must still be tunable")
        };
        let off = run(false);
        let on = run(true);

        assert_eq!(
            serde_json::to_string(&off.plan).unwrap(),
            serde_json::to_string(&on.plan).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&off.stage_points).unwrap(),
            serde_json::to_string(&on.stage_points).unwrap()
        );
        assert_eq!(
            off.predicted_iteration.to_bits(),
            on.predicted_iteration.to_bits()
        );
        assert_eq!(
            off.predicted_throughput.to_bits(),
            on.predicted_throughput.to_bits()
        );
        // The filter never changes accounting: every enumerated row is
        // attributed to exactly the same bucket under both backends.
        assert_eq!(off.stats.configs_evaluated, on.stats.configs_evaluated);
        for key in [
            "tuner.rejections.oom",
            "tuner.rejections.nonfinite",
            "tuner.rejections.dominated",
        ] {
            assert_eq!(
                off.telemetry.counter(key),
                on.telemetry.counter(key),
                "{key} must not change under the compiled backend"
            );
        }
        assert!(
            on.telemetry.counter("tuner.rejections.oom") > 0,
            "the tight budget must reject rows through the mem-first filter"
        );
        // Cache telemetry: compiled runs surface the step-table cache,
        // interpreter-only runs must not grow new keys.
        assert!(
            on.telemetry.counter("tuner.compile.misses") > 0,
            "compiled runs must build at least one step table"
        );
        assert!(
            on.telemetry.counter("tuner.compile.hits") > 0,
            "the mem_pair residual recurs within each group, so the \
             compile cache must hit"
        );
        assert!(
            on.telemetry.gauge("symbolic.program.superinstrs") > 0.0,
            "real sweep programs must contain fusible op pairs"
        );
        for key in ["tuner.compile.hits", "tuner.compile.misses"] {
            assert!(
                !off.telemetry.counters.contains_key(key),
                "interpreter-only runs must not grow new telemetry keys"
            );
        }
        assert!(!off
            .telemetry
            .gauges
            .contains_key("symbolic.program.superinstrs"));
    }

    /// An exact-batch re-tune from the export skips every sweep.
    #[test]
    fn exact_seed_skips_all_sweeps() {
        let (model, cluster, db, intf) = setup(2);
        let space = SearchSpace::mist();
        let (cold, export) = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune_with_export(8)
            .expect("cold tune");
        let warm = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .with_frontier_seed(std::sync::Arc::new(export))
            .tune(8)
            .expect("warm tune");
        assert_eq!(
            warm.stats.configs_evaluated, 0,
            "same-query warm start must not evaluate anything"
        );
        assert_eq!(
            serde_json::to_string(&cold.plan).unwrap(),
            serde_json::to_string(&warm.plan).unwrap()
        );
    }

    #[test]
    fn outer_candidate_cap_limits_work() {
        let (model, cluster, db, intf) = setup(4);
        let space = SearchSpace::mist();
        let full = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune(16)
            .expect("full tune");
        assert!(full.stats.outer_candidates > 2);
        let capped = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .with_max_outer_candidates(2)
            .tune(16)
            .expect("prefix of the sweep still finds a plan");
        assert_eq!(capped.stats.outer_candidates, 2);
        assert!(capped.stats.configs_evaluated < full.stats.configs_evaluated);
    }

    #[test]
    fn infeasible_workload_returns_none() {
        // 2.6B with no memory optimizations at all on one tiny-budget GPU.
        let model = gpt3(ModelSize::B2_6, 4096, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 2);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        let space = SearchSpace {
            ckpt: CkptMode::None,
            zero_levels: vec![0],
            offload_grid: vec![],
            offload_enabled: [false; 4],
            ..SearchSpace::mist()
        };
        let out = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(2)
            .tune(4);
        assert!(out.is_none(), "parallelism-only must OOM (Fig. 2a)");
    }
}
