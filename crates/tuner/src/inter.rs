//! Inter-stage tuning: layer partitioning + Pareto-point selection as an
//! MILP (paper §5.3, Eq. 2).
//!
//! Given per-stage-index Pareto frontiers (one family per layer count),
//! choose one `(l_i, f_i)` per stage such that `Σ l_i = L` and the
//! imbalance-aware pipeline objective (Eq. 1) is minimal. The objective's
//! two `max` terms linearize with standard MILP tricks:
//!
//! * `T ≥ Σ_c t_c · x_{i,c}` for every stage `i` (pipeline bottleneck),
//! * `U ≥ Σ_c d_c · x_{i,c} − Σ_{j<i} Σ_c t_c · x_{j,c}` (the delta of
//!   stage `i` minus the fill time before it — deltas hide in bubbles).
//!
//! objective `= (G−1)·T + Σ t + U`.
//!
//! When the space is *not* imbalance-aware (prior systems), candidate
//! times are pre-blended to `t + d/G` and the `U` machinery is dropped —
//! exactly the "averaged microbatch" approximation of Shortcoming #3.
//! An exhaustive enumerator cross-checks the MILP on small instances.

use mist_milp::{solve_milp, ConstraintOp, Lp, Milp, MilpOptions, MilpOutcome};
use mist_schedule::{mist_objective, StageStreams};
use serde::{Deserialize, Serialize};

use crate::intra::ParetoPoint;
use crate::space::SearchSpace;

/// One stage's chosen candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageChoice {
    /// The chosen Pareto point (carries layers, config, streams).
    pub point: ParetoPoint,
}

/// Result of inter-stage tuning for one `(G, S, device assignment)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterStageSolution {
    /// Per-stage choices, pipeline order.
    pub choices: Vec<StageChoice>,
    /// The true Eq. 1 objective of the chosen plan (seconds/iteration).
    pub objective: f64,
    /// The objective *as the space's own predictor sees it* — equals
    /// `objective` for imbalance-aware spaces, the blended `t + d/G`
    /// approximation otherwise. Cross-candidate selection must use this
    /// (a flawed predictor picks by its own flawed metric).
    pub selector_objective: f64,
}

fn true_objective(choices: &[&ParetoPoint], g: u32) -> f64 {
    let streams: Vec<StageStreams> = choices
        .iter()
        .map(|p| StageStreams { t: p.t, d: p.d })
        .collect();
    mist_objective(&streams, g)
}

/// The objective as a (possibly imbalance-unaware) predictor sees it.
fn selector_objective(choices: &[&ParetoPoint], g: u32, imbalance_aware: bool) -> f64 {
    if imbalance_aware {
        return true_objective(choices, g);
    }
    let blended: Vec<StageStreams> = choices
        .iter()
        .map(|p| StageStreams {
            t: p.t + p.d / g as f64,
            d: 0.0,
        })
        .collect();
    mist_objective(&blended, g)
}

/// Layer counts stage `i` may take: `L/S ± window`, clamped to `[1, L]`.
fn layer_candidates(total_layers: u32, num_stages: u32, window: u32) -> Vec<u32> {
    let base = total_layers / num_stages;
    let lo = base.saturating_sub(window).max(1);
    let hi =
        (base + window + u32::from(!total_layers.is_multiple_of(num_stages))).min(total_layers);
    (lo..=hi).collect()
}

/// Provenance statistics of one inter-stage DP solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterSolveStats {
    /// Pareto states alive across all DP cells after pruning.
    pub dp_states: u64,
    /// Transitions discarded because their objective lower bound
    /// crossed the incumbent-derived cutoff.
    pub bound_pruned: u64,
    /// Whether a `None` result was caused by the cutoff (the instance
    /// may have had feasible assignments, all provably worse than the
    /// incumbent) rather than by plain infeasibility.
    pub cutoff_hit: bool,
    /// Best complete selector objective found and then rejected by the
    /// cutoff (exact — the shape's best, had there been no incumbent,
    /// when the bound pruning did not truncate the search first).
    pub best_rejected: Option<f64>,
    /// Smallest objective lower bound among cutoff-pruned transitions: a
    /// proven lower bound on what the truncated subtrees could have
    /// achieved. The shape's killing constraint when no complete
    /// assignment survived.
    pub pruned_bound: Option<f64>,
}

/// Solves the inter-stage problem with the MILP formulation.
///
/// `frontiers[i][l − 1]` is the sampled frontier of stage `i` with `l`
/// layers. Returns `None` when no feasible assignment exists.
pub fn solve_inter_stage(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
) -> Option<InterStageSolution> {
    solve_inter_stage_with_cutoff(frontiers, total_layers, grad_accum, space, f64::INFINITY)
}

/// [`solve_inter_stage`] with an external selector-objective cutoff: the
/// driver passes its best plan so far, letting a cheap lower bound skip
/// hopeless `(G, S)` candidates entirely.
///
/// The default engine is the Pareto-state dynamic program
/// ([`solve_inter_stage_dp`]); [`solve_inter_stage_milp`] solves the same
/// instance through the MILP formulation and is used as a cross-check.
pub fn solve_inter_stage_with_cutoff(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
    cutoff: f64,
) -> Option<InterStageSolution> {
    let mut stats = InterSolveStats::default();
    solve_inter_stage_dp_stats(
        frontiers,
        total_layers,
        grad_accum,
        space,
        cutoff,
        &mut stats,
    )
}

/// MILP-based inter-stage solve (Eq. 2 as written in the paper).
pub fn solve_inter_stage_milp(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
    cutoff: f64,
) -> Option<InterStageSolution> {
    let s = frontiers.len();
    assert!(s >= 1);
    if s == 1 {
        // Single stage: pick the best point of the full layer count.
        let pts = frontiers[0].get(total_layers as usize - 1)?;
        let best = pts.iter().min_by(|a, b| {
            selector_objective(&[a], grad_accum, space.imbalance_aware)
                .total_cmp(&selector_objective(&[b], grad_accum, space.imbalance_aware))
        })?;
        return Some(InterStageSolution {
            choices: vec![StageChoice {
                point: best.clone(),
            }],
            objective: true_objective(&[best], grad_accum),
            selector_objective: selector_objective(&[best], grad_accum, space.imbalance_aware),
        });
    }

    // Candidate list per stage: (t_for_milp, d_for_milp, point).
    let g = grad_accum as f64;
    let lcands = layer_candidates(total_layers, s as u32, space.layer_window);
    let mut cands: Vec<Vec<&ParetoPoint>> = Vec::with_capacity(s);
    for fr in frontiers {
        let mut list: Vec<&ParetoPoint> = Vec::new();
        for &l in &lcands {
            if let Some(points) = fr.get(l as usize - 1) {
                list.extend(points.iter());
            }
        }
        if list.is_empty() {
            return None;
        }
        cands.push(list);
    }

    let milp_t = |p: &ParetoPoint| {
        if space.imbalance_aware {
            p.t
        } else {
            p.t + p.d / g
        }
    };
    let milp_d = |p: &ParetoPoint| if space.imbalance_aware { p.d } else { 0.0 };

    // Cheap lower bound: each stage at its fastest candidate, layer
    // constraint relaxed. Skips the MILP entirely for hopeless shapes.
    if cutoff.is_finite() {
        let tmins: Vec<f64> = cands
            .iter()
            .map(|list| list.iter().map(|p| milp_t(p)).fold(f64::INFINITY, f64::min))
            .collect();
        let max_t = tmins.iter().cloned().fold(0.0, f64::max);
        let sum_t: f64 = tmins.iter().sum();
        if (g - 1.0) * max_t + sum_t >= cutoff {
            return None;
        }
    }

    // Variable layout: per-stage candidate binaries, then T, then U.
    let mut offsets = Vec::with_capacity(s);
    let mut nvars = 0usize;
    for list in &cands {
        offsets.push(nvars);
        nvars += list.len();
    }
    let t_var = nvars;
    let u_var = nvars + 1;
    nvars += 2;

    let mut obj = vec![0.0; nvars];
    for (i, list) in cands.iter().enumerate() {
        for (c, p) in list.iter().enumerate() {
            obj[offsets[i] + c] = milp_t(p);
        }
    }
    obj[t_var] = g - 1.0;
    obj[u_var] = 1.0;

    let mut lp = Lp::new(nvars, obj);
    for v in 0..t_var {
        lp.set_bounds(v, 0.0, 1.0);
    }
    lp.set_bounds(t_var, 0.0, f64::INFINITY);
    lp.set_bounds(u_var, 0.0, f64::INFINITY);

    // Pick exactly one candidate per stage.
    for (i, list) in cands.iter().enumerate() {
        let coeffs = (0..list.len()).map(|c| (offsets[i] + c, 1.0)).collect();
        lp.constrain(coeffs, ConstraintOp::Eq, 1.0);
    }
    // Layers sum to L.
    let mut layer_coeffs = Vec::new();
    for (i, list) in cands.iter().enumerate() {
        for (c, p) in list.iter().enumerate() {
            layer_coeffs.push((offsets[i] + c, p.config.layers as f64));
        }
    }
    lp.constrain(layer_coeffs, ConstraintOp::Eq, total_layers as f64);
    // T is the bottleneck.
    for (i, list) in cands.iter().enumerate() {
        let mut coeffs = vec![(t_var, 1.0)];
        for (c, p) in list.iter().enumerate() {
            coeffs.push((offsets[i] + c, -milp_t(p)));
        }
        lp.constrain(coeffs, ConstraintOp::Ge, 0.0);
    }
    // U covers every stage's exposed delta (imbalance-aware only).
    if space.imbalance_aware {
        for i in 0..s {
            let mut coeffs = vec![(u_var, 1.0)];
            for (c, p) in cands[i].iter().enumerate() {
                coeffs.push((offsets[i] + c, -milp_d(p)));
            }
            for (j, list) in cands.iter().enumerate().take(i) {
                for (c, p) in list.iter().enumerate() {
                    coeffs.push((offsets[j] + c, milp_t(p)));
                }
            }
            lp.constrain(coeffs, ConstraintOp::Ge, 0.0);
        }
    }

    let milp = Milp {
        lp,
        integer_vars: (0..t_var).collect(),
    };
    let opts = MilpOptions {
        max_nodes: 2_000,
        cutoff,
        ..Default::default()
    };
    let outcome = solve_milp(&milp, opts);
    let (x, _) = match &outcome {
        MilpOutcome::Optimal { x, objective } => (x, objective),
        MilpOutcome::Feasible { x, objective, .. } => (x, objective),
        _ => return None,
    };

    let mut choices = Vec::with_capacity(s);
    for (i, list) in cands.iter().enumerate() {
        let c = (0..list.len()).find(|&c| x[offsets[i] + c] > 0.5)?;
        choices.push(StageChoice {
            point: list[c].clone(),
        });
    }
    let picked: Vec<&ParetoPoint> = choices.iter().map(|ch| &ch.point).collect();
    Some(InterStageSolution {
        objective: true_objective(&picked, grad_accum),
        selector_objective: selector_objective(&picked, grad_accum, space.imbalance_aware),
        choices,
    })
}

/// One DP state: sufficient statistics of a stage prefix plus the
/// back-pointer for plan reconstruction.
#[derive(Debug, Clone, Copy)]
struct State {
    max_t: f64,
    sum_t: f64,
    exposed: f64,
    /// (candidate index in the stage's list, predecessor state index).
    back: (usize, usize),
}

fn dominates(a: &State, b: &State) -> bool {
    a.max_t <= b.max_t + 1e-15 && a.sum_t <= b.sum_t + 1e-15 && a.exposed <= b.exposed + 1e-15
}

/// Exact forward dynamic program over `(stage, layers used)` with
/// Pareto-pruned value states.
///
/// The Eq. 1 objective is not separable — it mixes `max t`, `Σ t` and the
/// prefix-dependent exposed-delta term — but its *sufficient statistics*
/// after a stage prefix are exactly the triple
/// `(max_t, Σ t, max_i(d_i − Σ_{j<i} t_j))`. The DP carries the set of
/// non-dominated triples per `(stage, layers)` cell; since domination is
/// component-wise, any optimal completion extends a non-dominated prefix,
/// making the DP exact while staying polynomial in practice (state sets
/// stay small). This replaces the off-the-shelf MILP solver of the paper
/// on the hot path; the MILP formulation is retained as a cross-check.
pub fn solve_inter_stage_dp(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
    cutoff: f64,
) -> Option<InterStageSolution> {
    let mut stats = InterSolveStats::default();
    solve_inter_stage_dp_stats(
        frontiers,
        total_layers,
        grad_accum,
        space,
        cutoff,
        &mut stats,
    )
}

/// [`solve_inter_stage_dp`] that also reports solve statistics — the
/// live DP state count, how many transitions the cutoff bound pruned,
/// and whether a `None` result was cutoff-caused — for the tuner's
/// provenance journal.
pub fn solve_inter_stage_dp_stats(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
    cutoff: f64,
    stats: &mut InterSolveStats,
) -> Option<InterStageSolution> {
    let s = frontiers.len();
    assert!(s >= 1);
    let g = grad_accum as f64;
    let milp_t = |p: &ParetoPoint| {
        if space.imbalance_aware {
            p.t
        } else {
            p.t + p.d / g
        }
    };
    let milp_d = |p: &ParetoPoint| if space.imbalance_aware { p.d } else { 0.0 };

    if s == 1 {
        let pts = frontiers[0].get(total_layers as usize - 1)?;
        let best = pts.iter().min_by(|a, b| {
            selector_objective(&[a], grad_accum, space.imbalance_aware)
                .total_cmp(&selector_objective(&[b], grad_accum, space.imbalance_aware))
        })?;
        let sel = selector_objective(&[best], grad_accum, space.imbalance_aware);
        if sel >= cutoff {
            stats.cutoff_hit = true;
            stats.best_rejected = Some(sel);
            return None;
        }
        return Some(InterStageSolution {
            choices: vec![StageChoice {
                point: best.clone(),
            }],
            objective: true_objective(&[best], grad_accum),
            selector_objective: sel,
        });
    }

    // Candidate lists per stage, restricted to the layer window.
    let lcands = layer_candidates(total_layers, s as u32, space.layer_window);
    let mut cands: Vec<Vec<&ParetoPoint>> = Vec::with_capacity(s);
    for fr in frontiers {
        let mut list: Vec<&ParetoPoint> = Vec::new();
        for &l in &lcands {
            if let Some(points) = fr.get(l as usize - 1) {
                list.extend(points.iter());
            }
        }
        if list.is_empty() {
            return None;
        }
        cands.push(list);
    }

    let lmax = total_layers as usize;
    // table[stage][layers] = Pareto-pruned states. The cap bounds worst-case
    // memory; if it ever binds the DP becomes a (very good) heuristic — the
    // dp-vs-milp tests cover the realistic regime where it does not.
    const STATE_CAP: usize = 128;
    let mut prev: Vec<Vec<State>> = vec![Vec::new(); lmax + 1];
    let mut backs: Vec<Vec<Vec<State>>> = Vec::with_capacity(s);

    // Stage 0.
    for (c, p) in cands[0].iter().enumerate() {
        let l = p.config.layers as usize;
        if l > lmax {
            continue;
        }
        let st = State {
            max_t: milp_t(p),
            sum_t: milp_t(p),
            exposed: milp_d(p),
            back: (c, usize::MAX),
        };
        insert_state(&mut prev[l], st, STATE_CAP);
    }
    backs.push(prev.clone());

    for (stage, stage_cands) in cands.iter().enumerate().take(s).skip(1) {
        let mut next: Vec<Vec<State>> = vec![Vec::new(); lmax + 1];
        for (layers, states) in prev.iter().enumerate() {
            if states.is_empty() {
                continue;
            }
            // Remaining stages need at least one layer each.
            if layers + (s - stage) > lmax {
                continue;
            }
            for (si, st) in states.iter().enumerate() {
                for (c, p) in stage_cands.iter().enumerate() {
                    let l = layers + p.config.layers as usize;
                    if l > lmax {
                        continue;
                    }
                    let t = milp_t(p);
                    let d = milp_d(p);
                    let ns = State {
                        max_t: st.max_t.max(t),
                        sum_t: st.sum_t + t,
                        exposed: st.exposed.max(d - st.sum_t),
                        back: (c, si),
                    };
                    // Cutoff-based pruning on a lower bound of the final
                    // objective.
                    let lb = (g - 1.0) * ns.max_t + ns.sum_t + ns.exposed.max(0.0);
                    if lb >= cutoff {
                        stats.bound_pruned += 1;
                        stats.pruned_bound =
                            Some(stats.pruned_bound.map_or(lb, |prev| prev.min(lb)));
                        continue;
                    }
                    insert_state(&mut next[l], ns, STATE_CAP);
                }
            }
        }
        backs.push(next.clone());
        prev = next;
    }

    stats.dp_states = backs
        .iter()
        .flat_map(|table| table.iter())
        .map(|cell| cell.len() as u64)
        .sum();
    mist_telemetry::counter_add("inter.dp_states", stats.dp_states);

    // Pick the best full assignment.
    let finals = &prev[lmax];
    let Some((best_idx, best_sel)) = finals
        .iter()
        .enumerate()
        .map(|(i, st)| ((g - 1.0) * st.max_t + st.sum_t + st.exposed.max(0.0), i))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(sel, i)| (i, sel))
    else {
        // An empty final cell after bound-pruning means the cutoff (not
        // the instance) emptied the search.
        stats.cutoff_hit = stats.bound_pruned > 0;
        return None;
    };
    if best_sel >= cutoff {
        stats.cutoff_hit = true;
        stats.best_rejected = Some(best_sel);
        return None;
    }

    // Reconstruct: walk back pointers through the per-stage tables.
    let mut picked_rev: Vec<&ParetoPoint> = Vec::with_capacity(s);
    let mut layers = lmax;
    let mut state = finals[best_idx];
    for stage in (0..s).rev() {
        let (c, back_idx) = state.back;
        let p = cands[stage][c];
        picked_rev.push(p);
        layers -= p.config.layers as usize;
        if stage > 0 {
            state = backs[stage - 1][layers][back_idx];
        }
    }
    picked_rev.reverse();
    let choices: Vec<StageChoice> = picked_rev
        .iter()
        .map(|p| StageChoice {
            point: (*p).clone(),
        })
        .collect();
    Some(InterStageSolution {
        objective: true_objective(&picked_rev, grad_accum),
        selector_objective: best_sel,
        choices,
    })
}

/// Inserts a state keeping the cell's Pareto set, capped at `cap` by
/// dropping the worst (largest objective-proxy) states.
fn insert_state(cell: &mut Vec<State>, st: State, cap: usize) {
    for existing in cell.iter() {
        if dominates(existing, &st) {
            return;
        }
    }
    cell.retain(|e| !dominates(&st, e));
    cell.push(st);
    if cell.len() > cap {
        // Drop the state with the worst sum of components.
        let (worst, _) = cell
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.max_t + e.sum_t + e.exposed))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty");
        cell.swap_remove(worst);
    }
}

/// Exhaustive inter-stage solver for cross-checking the MILP. Only
/// practical for small instances (a few stages, narrow windows).
pub fn enumerate_inter_stage(
    frontiers: &[&Vec<Vec<ParetoPoint>>],
    total_layers: u32,
    grad_accum: u32,
    space: &SearchSpace,
) -> Option<InterStageSolution> {
    let s = frontiers.len();
    let lcands = layer_candidates(total_layers, s as u32, space.layer_window);
    let mut best: Option<InterStageSolution> = None;
    let mut stack: Vec<&ParetoPoint> = Vec::with_capacity(s);
    #[allow(clippy::too_many_arguments)]
    fn recurse<'p>(
        frontiers: &[&'p Vec<Vec<ParetoPoint>>],
        lcands: &[u32],
        stage: usize,
        layers_left: i64,
        grad_accum: u32,
        space: &SearchSpace,
        stack: &mut Vec<&'p ParetoPoint>,
        best: &mut Option<InterStageSolution>,
    ) {
        let s = frontiers.len();
        if stage == s {
            if layers_left != 0 {
                return;
            }
            let sel = selector_objective(stack, grad_accum, space.imbalance_aware);
            let better = best.as_ref().is_none_or(|b| sel < b.selector_objective);
            if better {
                *best = Some(InterStageSolution {
                    choices: stack
                        .iter()
                        .map(|p| StageChoice {
                            point: (*p).clone(),
                        })
                        .collect(),
                    objective: true_objective(stack, grad_accum),
                    selector_objective: sel,
                });
            }
            return;
        }
        for &l in lcands {
            let left = layers_left - l as i64;
            if left < (s - stage - 1) as i64 {
                continue;
            }
            if let Some(points) = frontiers[stage].get(l as usize - 1) {
                for p in points {
                    stack.push(p);
                    recurse(
                        frontiers,
                        lcands,
                        stage + 1,
                        left,
                        grad_accum,
                        space,
                        stack,
                        best,
                    );
                    stack.pop();
                }
            }
        }
    }
    recurse(
        frontiers,
        &lcands,
        0,
        total_layers as i64,
        grad_accum,
        space,
        &mut stack,
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_graph::{StageCandidate, StageConfigValues, StagePoint, StageRole};
    use mist_hardware::DeviceMesh;

    fn mk_point(l: u32, t: f64, d: f64) -> ParetoPoint {
        let _zero4 = [0.0; 4];
        ParetoPoint {
            t,
            d,
            mem_peak: 1.0,
            candidate: StageCandidate {
                mesh: DeviceMesh::new(1, 1),
                dp: 1,
                tp: 1,
                micro_batch: 1,
                role: StageRole::Middle,
            },
            config: StageConfigValues::plain(l, 1),
            point: StagePoint {
                mem_fwd: 1.0,
                mem_bwd: 1.0,
                mem_resident: 0.0,
                mem_act_per_mb: 0.0,
                mem_transient_fwd: 0.0,
                mem_transient_bwd: 0.0,
                fwd: [t / 3.0, 0.0, 0.0, 0.0],
                bwd: [2.0 * t / 3.0, 0.0, 0.0, 0.0],
                first_extra: [d, 0.0, 0.0, 0.0],
                last_extra: [0.0; 4],
            },
        }
    }

    /// A frontier family where a stage of `l` layers costs `l·per_layer`,
    /// with a cheap-t/high-d alternative at each size.
    fn family(max_l: u32, per_layer: f64) -> Vec<Vec<ParetoPoint>> {
        (1..=max_l)
            .map(|l| {
                vec![
                    mk_point(l, l as f64 * per_layer, 0.0),
                    mk_point(l, l as f64 * per_layer * 0.8, 0.6),
                ]
            })
            .collect()
    }

    fn space() -> SearchSpace {
        SearchSpace {
            layer_window: 8,
            ..SearchSpace::mist()
        }
    }

    #[test]
    fn single_stage_picks_best_point() {
        let f = family(8, 1.0);
        let sol = solve_inter_stage(&[&f], 8, 4, &space()).unwrap();
        assert_eq!(sol.choices.len(), 1);
        assert_eq!(sol.choices[0].point.config.layers, 8);
        // With G=4 the 0.8·t / 0.6·d point wins: 4·6.4+0.6 < 4·8.
        assert!(sol.choices[0].point.d > 0.0);
    }

    #[test]
    fn dp_matches_milp_on_heterogeneous_families() {
        for (g, scale) in [(4u32, 1.0f64), (12, 1.7), (32, 0.6)] {
            let f0 = family(12, 1.0 * scale);
            let f1 = family(12, 1.5 * scale);
            let f2 = family(12, 0.8 * scale);
            let fr = [&f0, &f1, &f2];
            let sp = space();
            let dp = solve_inter_stage_dp(&fr, 12, g, &sp, f64::INFINITY).unwrap();
            let milp = solve_inter_stage_milp(&fr, 12, g, &sp, f64::INFINITY).unwrap();
            assert!(
                (dp.selector_objective - milp.selector_objective).abs() < 1e-6,
                "G={g}: dp {} vs milp {}",
                dp.selector_objective,
                milp.selector_objective
            );
        }
    }

    #[test]
    fn milp_matches_exhaustive_enumeration() {
        let f0 = family(12, 1.0);
        let f1 = family(12, 1.5); // Slower stage → fewer layers.
        let fr = [&f0, &f1];
        let sp = space();
        let milp = solve_inter_stage(&fr, 12, 6, &sp).unwrap();
        let brute = enumerate_inter_stage(&fr, 12, 6, &sp).unwrap();
        assert!(
            (milp.objective - brute.objective).abs() < 1e-6,
            "milp {} vs brute {}",
            milp.objective,
            brute.objective
        );
        let layers: u32 = milp.choices.iter().map(|c| c.point.config.layers).sum();
        assert_eq!(layers, 12);
    }

    #[test]
    fn faster_stage_gets_more_layers() {
        let f0 = family(12, 0.5); // Twice as fast.
        let f1 = family(12, 1.0);
        let sol = solve_inter_stage(&[&f0, &f1], 12, 8, &space()).unwrap();
        let l0 = sol.choices[0].point.config.layers;
        let l1 = sol.choices[1].point.config.layers;
        assert!(l0 > l1, "fast stage {l0} should outweigh slow stage {l1}");
    }

    #[test]
    fn imbalance_unaware_selection_can_differ() {
        // Stage 0 candidates: (t=1.0, d=0) or (t=0.9, d=1.0), G=16. The
        // averaged selector sees the second as 0.9 + 1/16 = 0.96 < 1.0 and
        // takes it, but stage 0's delta is fully exposed (no fill before
        // the first stage), so the true objective is 0.9 more per
        // iteration — the bottleneck-drift trap of Shortcoming #3.
        let f0: Vec<Vec<ParetoPoint>> = vec![vec![mk_point(1, 1.0, 0.0), mk_point(1, 0.9, 1.0)]];
        let f1: Vec<Vec<ParetoPoint>> = vec![vec![mk_point(1, 1.0, 0.0)]];
        let fr = [&f0, &f1];
        let aware = SearchSpace {
            layer_window: 1,
            ..SearchSpace::mist()
        };
        let unaware = SearchSpace {
            imbalance_aware: false,
            ..aware.clone()
        };
        let sa = solve_inter_stage(&fr, 2, 16, &aware).unwrap();
        let su = solve_inter_stage(&fr, 2, 16, &unaware).unwrap();
        assert_eq!(sa.choices[0].point.d, 0.0, "aware avoids the exposed delta");
        assert!(su.choices[0].point.d > 0.0, "unaware takes the trap");
        // Both report the TRUE objective; the unaware one is worse.
        assert!(su.objective > sa.objective);
    }

    #[test]
    fn infeasible_when_layers_cannot_sum() {
        // Frontiers only offer l=1 but we need 10 layers over 2 stages
        // with window 0 around base 5 → no l=5 entries.
        let f: Vec<Vec<ParetoPoint>> = vec![vec![mk_point(1, 1.0, 0.0)]];
        let fr = [&f, &f];
        let sp = SearchSpace {
            layer_window: 0,
            ..SearchSpace::mist()
        };
        assert!(solve_inter_stage(&fr, 10, 2, &sp).is_none());
    }

    #[test]
    fn deltas_hidden_in_bubbles_are_free() {
        // Stage 1 may take d=0.5 for a cheaper t; the fill before it
        // (t_0 = 1.0) hides the delta entirely, so the MILP should take it.
        let f0: Vec<Vec<ParetoPoint>> = vec![vec![mk_point(1, 1.0, 0.0)]];
        let f1: Vec<Vec<ParetoPoint>> = vec![vec![mk_point(1, 1.0, 0.0), mk_point(1, 0.95, 0.5)]];
        let fr = [&f0, &f1];
        let sp = SearchSpace {
            layer_window: 1,
            ..SearchSpace::mist()
        };
        let sol = solve_inter_stage(&fr, 2, 8, &sp).unwrap();
        assert!(
            sol.choices[1].point.d > 0.0,
            "hidden delta should be exploited"
        );
    }
}
