//! Plan certificates: independent re-derivation of a plan's claims.
//!
//! The tuner's sweep machinery is fast because it is heavily batched,
//! specialized and pruned — which makes it exactly the wrong code to
//! trust blindly. A [`PlanCertificate`] is produced by a *separate*
//! path with none of those optimizations: each chosen stage candidate
//! is re-analyzed from scratch with [`StageAnalyzer`], its symbolic
//! program is pushed through the `mist-irlint` interval framework with
//! every search symbol pinned to the chosen configuration value, and
//! the resulting root bounds must
//!
//! 1. contain the [`StagePoint`] values the tuner reported (the sweep
//!    and the framework agree on all 22 roots),
//! 2. prove both peak-memory roots fit the per-GPU budget, and
//! 3. reproduce the reported Eq. 1 objective when folded through the
//!    interference model (or costed serially, for overlap-unaware
//!    baseline spaces).
//!
//! [`certify_plan`] runs the check and emits a
//! [`CertCheck`](mist_telemetry::JournalEvent::CertCheck) journal
//! event. It is called in three phases: `"tune"` (the tuner certifies
//! its own output), `"serve"` (`mist-service` re-checks a cached or
//! warm-started plan before serving it), and `"verify"` (`mist-cli
//! verify-plan` re-derives the certificate offline).

use mist_graph::{stage_roots, StageAnalyzer, StagePoint};
use mist_hardware::{ClusterSpec, OpCostDb};
use mist_interference::InterferenceModel;
use mist_irlint::{root_intervals, DomainMap, SymbolDomain};
use mist_models::ModelSpec;
use mist_schedule::{mist_objective, stage_times, StageStreams, TrainingPlan};
use serde::{Deserialize, Serialize};

/// Relative tolerance for containment and objective agreement. The
/// sweep and the framework execute the same SSA instructions in the
/// same order, so disagreement beyond float noise means one of them is
/// wrong (or the plan was tampered with).
const REL_TOL: f64 = 1e-9;

/// One root's re-derived interval bound at the chosen configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertBound {
    /// Root label (e.g. `mem_fwd`).
    pub label: String,
    /// Interval lower bound.
    pub lo: f64,
    /// Interval upper bound.
    pub hi: f64,
}

/// Re-derived facts about one pipeline stage of a certified plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCert {
    /// Stage index in pipeline order.
    pub stage: u32,
    /// Re-derived peak forward-memory bound (bytes).
    pub mem_fwd: CertBound,
    /// Re-derived peak backward-memory bound (bytes).
    pub mem_bwd: CertBound,
    /// Number of program roots whose bounds were checked against the
    /// recorded stage point (all of them, or the check failed).
    pub roots_checked: u32,
}

/// An independently re-derived proof that a [`TrainingPlan`]'s memory
/// and cost claims hold. Carried on every
/// [`TuneOutcome`](crate::TuneOutcome).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanCertificate {
    /// Per-GPU memory budget the memory roots were proven against
    /// (bytes).
    pub budget: f64,
    /// Eq. 1 objective recomputed from the recorded stage points
    /// through the interference model (seconds).
    pub objective: f64,
    /// Per-stage re-derived bounds.
    pub stages: Vec<StageCert>,
}

/// The result of [`certify_plan`]: the re-derived certificate plus
/// every check that failed (empty means the plan is certified).
#[derive(Debug, Clone)]
pub struct CertReport {
    /// The re-derived certificate.
    pub certificate: PlanCertificate,
    /// Human-readable failure descriptions; empty when certified.
    pub failures: Vec<String>,
}

impl CertReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// `v` is inside `[lo, hi]` up to float noise.
fn contains(lo: f64, hi: f64, v: f64) -> bool {
    let tol = REL_TOL * v.abs().max(1.0);
    v >= lo - tol && v <= hi + tol
}

/// The 22 recorded values of a stage point in `stage_roots` order.
fn point_values(p: &StagePoint) -> [f64; stage_roots::COUNT] {
    let mut vals = [0.0; stage_roots::COUNT];
    vals[stage_roots::MEM_FWD] = p.mem_fwd;
    vals[stage_roots::MEM_BWD] = p.mem_bwd;
    vals[stage_roots::MEM_RESIDENT] = p.mem_resident;
    vals[stage_roots::MEM_ACT_PER_MB] = p.mem_act_per_mb;
    vals[stage_roots::MEM_TRANSIENT_FWD] = p.mem_transient_fwd;
    vals[stage_roots::MEM_TRANSIENT_BWD] = p.mem_transient_bwd;
    vals[stage_roots::FWD..stage_roots::FWD + 4].copy_from_slice(&p.fwd);
    vals[stage_roots::BWD..stage_roots::BWD + 4].copy_from_slice(&p.bwd);
    vals[stage_roots::FIRST_EXTRA..stage_roots::FIRST_EXTRA + 4].copy_from_slice(&p.first_extra);
    vals[stage_roots::LAST_EXTRA..stage_roots::LAST_EXTRA + 4].copy_from_slice(&p.last_extra);
    vals
}

/// Independently re-derives and checks a plan's certificate.
///
/// `overlap_aware` must match the search space the plan came from:
/// overlap-aware spaces fold stage points through the interference
/// model ([`stage_times`]), restricted baselines (Aceso) cost their
/// streams serially. `phase` tags the emitted `CertCheck` journal
/// event: `"tune"`, `"serve"` or `"verify"`.
#[allow(clippy::too_many_arguments)]
pub fn certify_plan(
    model: &ModelSpec,
    cluster: &ClusterSpec,
    db: &OpCostDb,
    interference: &InterferenceModel,
    plan: &TrainingPlan,
    stage_points: &[StagePoint],
    predicted_iteration: f64,
    budget: f64,
    overlap_aware: bool,
    phase: &str,
) -> CertReport {
    let _span = mist_telemetry::span!("tuner.certify", stages = plan.stages.len());
    let mut failures = Vec::new();
    let mut stages = Vec::new();

    if let Err(e) = plan.validate() {
        failures.push(format!("plan validation: {e}"));
    }
    if stage_points.len() != plan.stages.len() {
        failures.push(format!(
            "{} stage points for {} plan stages",
            stage_points.len(),
            plan.stages.len()
        ));
    }

    let analyzer = StageAnalyzer::new(model, cluster, db);
    for (i, (st, point)) in plan.stages.iter().zip(stage_points).enumerate() {
        if !st.candidate.mesh.supports(st.candidate.dp, st.candidate.tp) {
            failures.push(format!(
                "stage {i}: (dp={}, tp={}) does not factor mesh {:?}",
                st.candidate.dp, st.candidate.tp, st.candidate.mesh
            ));
            continue;
        }
        let tapes = analyzer.analyze(&st.candidate);
        // Pin all eight search symbols to the chosen configuration; the
        // interval framework then re-derives every root from first
        // principles, independent of the sweep's batching and pruning.
        let mut domains = DomainMap::new();
        let integral = ["L", "ckpt", "zero", "inflight"];
        for (sym, v) in st.config.bindings() {
            domains = domains.declare(sym, SymbolDomain::point(v, integral.contains(&sym)));
        }
        let bounds = root_intervals(&tapes.program, &domains);
        let vals = point_values(point);
        if bounds.len() != vals.len() {
            failures.push(format!(
                "stage {i}: {} root bounds for {} recorded values",
                bounds.len(),
                vals.len()
            ));
            continue;
        }
        for (b, &v) in bounds.iter().zip(&vals) {
            if b.may_nonfinite {
                failures.push(format!("stage {i}: root {} may be non-finite", b.label));
            } else if !contains(b.lo, b.hi, v) {
                failures.push(format!(
                    "stage {i}: recorded {} = {v} outside derived [{}, {}]",
                    b.label, b.lo, b.hi
                ));
            }
        }
        let mem_tol = budget.abs() * REL_TOL;
        for idx in [stage_roots::MEM_FWD, stage_roots::MEM_BWD] {
            let b = &bounds[idx];
            // NaN upper bounds are caught by the may_nonfinite check
            // above, so a plain comparison suffices here.
            if b.hi > budget + mem_tol {
                failures.push(format!(
                    "stage {i}: {} upper bound {} exceeds budget {budget}",
                    b.label, b.hi
                ));
            }
        }
        let cert_bound = |idx: usize| CertBound {
            label: bounds[idx].label.clone(),
            lo: bounds[idx].lo,
            hi: bounds[idx].hi,
        };
        stages.push(StageCert {
            stage: i as u32,
            mem_fwd: cert_bound(stage_roots::MEM_FWD),
            mem_bwd: cert_bound(stage_roots::MEM_BWD),
            roots_checked: vals.len() as u32,
        });
    }

    // Fold the recorded points through the interference model and Eq. 1
    // exactly as the driver does; the reported objective must agree.
    let objective = if stage_points.is_empty() {
        failures.push("plan has no stage points to fold into Eq. 1".into());
        f64::NAN
    } else {
        let streams: Vec<StageStreams> = stage_points
            .iter()
            .map(|p| {
                if overlap_aware {
                    stage_times(p, interference)
                } else {
                    // Restricted overlap-unaware spaces cost the four
                    // streams serially (see `IntraStageTuner`).
                    let sum = |s: [f64; 4]| s.iter().sum::<f64>();
                    StageStreams {
                        t: sum(p.fwd) + sum(p.bwd),
                        d: sum(p.first_extra) + sum(p.last_extra),
                    }
                }
            })
            .collect();
        let obj = mist_objective(&streams, plan.grad_accum.max(1));
        if !contains(obj, obj, predicted_iteration) {
            failures.push(format!(
                "reported objective {predicted_iteration} disagrees with re-derived {obj}"
            ));
        }
        obj
    };

    mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::CertCheck {
        phase: phase.to_owned(),
        stages: plan.stages.len() as u32,
        ok: failures.is_empty(),
        failures: failures.clone(),
    });

    CertReport {
        certificate: PlanCertificate {
            budget,
            objective,
            stages,
        },
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchSpace, Tuner};
    use mist_hardware::{GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    fn certified_outcome() -> (
        ModelSpec,
        ClusterSpec,
        OpCostDb,
        InterferenceModel,
        crate::TuneOutcome,
    ) {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 2);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        let space = SearchSpace::mist();
        let out = Tuner::new(&model, &cluster, &db, &space, &intf)
            .with_max_grad_accum(8)
            .tune(8)
            .expect("1.3B on 2 GPUs must be tunable");
        (model, cluster, db, intf, out)
    }

    #[test]
    fn tuned_plan_certifies() {
        let (model, cluster, db, intf, out) = certified_outcome();
        let report = certify_plan(
            &model,
            &cluster,
            &db,
            &intf,
            &out.plan,
            &out.stage_points,
            out.predicted_iteration,
            cluster.gpu.memory_bytes,
            true,
            "verify",
        );
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.certificate, out.certificate);
        assert_eq!(report.certificate.stages.len(), out.plan.stages.len());
        for st in &report.certificate.stages {
            assert!(st.mem_fwd.hi <= cluster.gpu.memory_bytes);
            assert!(st.roots_checked == stage_roots::COUNT as u32);
        }
    }

    #[test]
    fn corrupted_memory_claim_is_rejected() {
        let (model, cluster, db, intf, mut out) = certified_outcome();
        out.stage_points[0].mem_fwd *= 2.0;
        let report = certify_plan(
            &model,
            &cluster,
            &db,
            &intf,
            &out.plan,
            &out.stage_points,
            out.predicted_iteration,
            cluster.gpu.memory_bytes,
            true,
            "verify",
        );
        assert!(!report.ok());
        assert!(
            report.failures.iter().any(|f| f.contains("mem_fwd")),
            "failures must name the tampered root: {:?}",
            report.failures
        );
    }

    #[test]
    fn corrupted_objective_is_rejected() {
        let (model, cluster, db, intf, out) = certified_outcome();
        let report = certify_plan(
            &model,
            &cluster,
            &db,
            &intf,
            &out.plan,
            &out.stage_points,
            out.predicted_iteration * 0.5,
            cluster.gpu.memory_bytes,
            true,
            "verify",
        );
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("objective")));
    }

    #[test]
    fn shrunk_budget_fails_the_memory_proof() {
        let (model, cluster, db, intf, out) = certified_outcome();
        let tight = out
            .stage_points
            .iter()
            .map(|p| p.mem_peak())
            .fold(0.0, f64::max)
            * 0.5;
        let report = certify_plan(
            &model,
            &cluster,
            &db,
            &intf,
            &out.plan,
            &out.stage_points,
            out.predicted_iteration,
            tight,
            true,
            "verify",
        );
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("budget")));
    }

    #[test]
    fn tampered_plan_shape_is_rejected() {
        let (model, cluster, db, intf, mut out) = certified_outcome();
        out.plan.stages[0].config.inflight += 1;
        let report = certify_plan(
            &model,
            &cluster,
            &db,
            &intf,
            &out.plan,
            &out.stage_points,
            out.predicted_iteration,
            cluster.gpu.memory_bytes,
            true,
            "verify",
        );
        assert!(!report.ok(), "1F1B inflight violation must fail validate");
    }
}
