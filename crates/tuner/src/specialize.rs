//! Content-addressed cache of per-sweep specialized programs.
//!
//! The intra-stage tuner sweeps a stage program over the cross product
//! of ZeRO levels, offloading combos and layer counts. Within one
//! `(zero, offload)` group every symbol except `L` (and `ckpt`) is a
//! compile-time constant, so the 110-instruction fused stage program
//! collapses to a small residual via
//! [`specialize`](mist_symbolic::specialize). Specialization itself is
//! not free, so this cache makes it a once-per-group cost: programs are
//! keyed by their stable [`Program::id`] plus the fingerprint of the
//! frozen symbols *restricted to the program's own table* — two frozen
//! sets that agree on the symbols a program actually reads share one
//! residual.
//!
//! Sweep facts ([`SweepFacts`]) are the second cached artifact: the
//! `mist-irlint` interval analysis proves which `Select` guards are
//! constant over the whole sweep domain (e.g. `ckpt > 0` under
//! `CkptMode::Full`) and which slots are finite and non-negative,
//! letting specialization delete branches and collapse zero products
//! that no frozen binding alone could kill. They depend only on the
//! program and the search space's domains, so they are computed once
//! per program id.

use std::collections::HashMap;
use std::sync::Arc;

use mist_irlint::DomainMap;
use mist_symbolic::{specialize, CompiledProgram, FrozenSymbols, Program, SweepFacts};
use parking_lot::Mutex;

/// Cache of specialized programs and of sweep-domain facts.
///
/// `Sync`: frontier computations fan out over the thread pool, so both
/// maps sit behind mutexes and cached artifacts are `Arc`s. Hit/miss
/// counts are per-instance (tests compare exact counts, so they must
/// not leak across tuner instances); the driver publishes them into the
/// global registry as `specializer.cache_hits` / `.cache_misses` when a
/// tune completes.
pub struct Specializer {
    programs: Mutex<HashMap<(u64, u64), Arc<Program>>>,
    facts: Mutex<HashMap<u64, Arc<SweepFacts>>>,
    /// Direct-threaded compiles, keyed by the source (usually residual)
    /// program id — compilation is deterministic per program, so the
    /// id alone content-addresses the step table.
    compiled: Mutex<HashMap<u64, Arc<CompiledProgram>>>,
    hits: mist_telemetry::Counter,
    misses: mist_telemetry::Counter,
    compile_hits: mist_telemetry::Counter,
    compile_misses: mist_telemetry::Counter,
    /// High-water superinstruction count across every step table built
    /// — how much the peephole fuser found in real sweep programs.
    superinstrs: mist_telemetry::Gauge,
}

impl Default for Specializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Specializer {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Specializer {
            programs: Mutex::new(HashMap::new()),
            facts: Mutex::new(HashMap::new()),
            compiled: Mutex::new(HashMap::new()),
            hits: mist_telemetry::Counter::new(),
            misses: mist_telemetry::Counter::new(),
            compile_hits: mist_telemetry::Counter::new(),
            compile_misses: mist_telemetry::Counter::new(),
            superinstrs: mist_telemetry::Gauge::new(),
        }
    }

    /// The interval facts of `program` over `domains` — constant
    /// `Select` guards plus per-slot finite/non-negative ranges —
    /// cached per program id.
    ///
    /// The facts are sound only for bindings inside `domains`; rows a
    /// caller evaluates out of domain (e.g. the tuner's `ckpt = ∞`
    /// infeasibility marker) must be discarded, not read back.
    pub fn sweep_facts(&self, program: &Program, domains: &DomainMap) -> Arc<SweepFacts> {
        if let Some(hit) = self.facts.lock().get(&program.id()) {
            return hit.clone();
        }
        let facts = Arc::new(mist_irlint::sweep_facts(program, domains));
        // Two pool tasks can race to analyze the same program; first
        // insert wins so every caller shares one allocation.
        self.facts
            .lock()
            .entry(program.id())
            .or_insert(facts)
            .clone()
    }

    /// Returns `program` specialized against `frozen`, reusing a cached
    /// residual when one exists for the same `(program, frozen)` pair.
    ///
    /// The key restricts `frozen` to the symbols `program` actually
    /// reads, so freezing extra symbols never fragments the cache.
    pub fn specialized(
        &self,
        program: &Program,
        frozen: &FrozenSymbols,
        domains: &DomainMap,
    ) -> Arc<Program> {
        let key = (
            program.id(),
            frozen.restricted_to(program.symbols()).fingerprint(),
        );
        if let Some(hit) = self.programs.lock().get(&key) {
            self.hits.inc();
            let residual_len = hit.len();
            mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::SpecializeCache {
                hit: true,
                program: program.id(),
                original: program.len() as u32,
                residual: residual_len as u32,
            });
            return hit.clone();
        }
        self.misses.inc();
        let facts = self.sweep_facts(program, domains);
        let residual = Arc::new(specialize(program, frozen, &facts));
        mist_telemetry::journal_event(|| mist_telemetry::JournalEvent::SpecializeCache {
            hit: false,
            program: program.id(),
            original: program.len() as u32,
            residual: residual.len() as u32,
        });
        self.programs.lock().entry(key).or_insert(residual).clone()
    }

    /// Returns `program` lowered to the direct-threaded backend,
    /// reusing a cached compile when one exists for the same program.
    ///
    /// Compilation (superinstruction fusion + lowering + kernel
    /// resolution) is deterministic per program, so the cache is keyed
    /// by [`Program::id`] alone and the compiled `Arc` is shared across
    /// every pool worker sweeping the same residual.
    pub fn compiled(&self, program: &Program) -> Arc<CompiledProgram> {
        if let Some(hit) = self.compiled.lock().get(&program.id()) {
            self.compile_hits.inc();
            return hit.clone();
        }
        self.compile_misses.inc();
        let compiled = Arc::new(CompiledProgram::compile(program));
        self.superinstrs.set_max(compiled.superinstrs() as f64);
        // Two pool tasks can race to compile the same residual; first
        // insert wins so every caller shares one step table.
        self.compiled
            .lock()
            .entry(program.id())
            .or_insert(compiled)
            .clone()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.value()
    }

    /// Cache misses (= distinct residual programs built) so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.value()
    }

    /// Compiled-backend cache hits so far.
    pub fn compile_hits(&self) -> u64 {
        self.compile_hits.value()
    }

    /// Compiled-backend cache misses (= distinct step tables built) so
    /// far.
    pub fn compile_misses(&self) -> u64 {
        self.compile_misses.value()
    }

    /// Largest superinstruction count seen in any compiled step table.
    pub fn superinstrs_high_water(&self) -> f64 {
        self.superinstrs.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_irlint::SymbolDomain;
    use mist_symbolic::{CmpOp, Context};

    #[test]
    fn megatron_space_deletes_every_offload_and_ckpt_select() {
        use mist_graph::{sweep_frozen_symbols, StageAnalyzer, StageCandidate, StageRole};
        use mist_hardware::{ClusterSpec, DeviceMesh, OpCostDb, Platform};
        use mist_models::{gpt3, AttentionImpl, ModelSize};
        use mist_symbolic::Instr;

        let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(cluster.gpu.clone());
        let analyzer = StageAnalyzer::new(&model, &cluster, &db);
        let tapes = analyzer.analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, 4),
            dp: 2,
            tp: 2,
            micro_batch: 2,
            role: StageRole::Only,
        });
        let selects = |p: &Program| {
            p.instrs()
                .filter(|i| matches!(i, Instr::Select(..)))
                .count()
        };
        assert!(
            selects(&tapes.program) > 0,
            "fused program should branch on offload/ckpt"
        );

        // Megatron-LM's restricted space pins all four offload ratios
        // to 0 and recomputes every layer (`CkptMode::Full`, so `ckpt`
        // spans [1, L]): each offload `Select` condition freezes to a
        // constant and the `ckpt > 0` guard is provably taken, so the
        // residual must be branch-free.
        let space = crate::SearchSpace::megatron();
        let domains = space.symbol_domains(&model);
        let cache = Specializer::new();
        for zero in space.zero_levels() {
            let frozen = sweep_frozen_symbols(*zero, [0.0; 4], 1, None);
            let residual = cache.specialized(&tapes.program, &frozen, &domains);
            assert_eq!(
                selects(&residual),
                0,
                "zero={zero}: offload/ckpt selects must all be deleted"
            );
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_on_restricted_equivalence() {
        let ctx = Context::new();
        let x = ctx.symbol("x");
        let y = ctx.symbol("y");
        let program = ctx.compile_program(&[("r", x * y + 1.0)]);
        let domains = DomainMap::new()
            .declare("x", SymbolDomain::new(0.0, 10.0, false))
            .declare("y", SymbolDomain::new(0.0, 10.0, false));
        let cache = Specializer::new();

        let frozen = FrozenSymbols::new(vec![("y", 2.0)]);
        let a = cache.specialized(&program, &frozen, &domains);
        assert_eq!((cache.cache_hits(), cache.cache_misses()), (0, 1));
        let b = cache.specialized(&program, &frozen, &domains);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.cache_hits(), cache.cache_misses()), (1, 1));

        // Extra frozen symbols the program never reads must not
        // fragment the cache.
        let wider = FrozenSymbols::new(vec![("y", 2.0), ("unrelated", 7.0)]);
        let c = cache.specialized(&program, &wider, &domains);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!((cache.cache_hits(), cache.cache_misses()), (2, 1));

        // A different value is a different residual.
        let other = FrozenSymbols::new(vec![("y", 3.0)]);
        let d = cache.specialized(&program, &other, &domains);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!((cache.cache_hits(), cache.cache_misses()), (2, 2));
    }

    #[test]
    fn sweep_facts_are_cached_per_program() {
        let ctx = Context::new();
        let z = ctx.symbol("z");
        let x = ctx.symbol("x");
        // Guard `z >= 1` is provably true over z ∈ [1, 3].
        let cond = ctx.cmp(CmpOp::Ge, z, ctx.constant(1.0));
        let e = ctx.select(cond, x * 2.0, x * 3.0);
        let program = ctx.compile_program(&[("r", e)]);
        let domains = DomainMap::new()
            .declare("z", SymbolDomain::new(1.0, 3.0, true))
            .declare("x", SymbolDomain::new(0.0, 10.0, false));
        let cache = Specializer::new();
        let f1 = cache.sweep_facts(&program, &domains);
        let f2 = cache.sweep_facts(&program, &domains);
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(f1.guards().len(), 1);
        assert!(f1.guards()[0].taken);
        assert_eq!(f1.ranges().len(), program.len());
    }
}
