//! Mist's imbalance-aware hierarchical auto-tuner (paper §5.3).
//!
//! The tuner decouples the search into:
//!
//! * **Intra-stage tuning** ([`IntraStageTuner`]) — for every pipeline
//!   partitioning candidate `(layer count, mesh, role, inflight)`, find
//!   the Pareto frontier of `(t, d)` pairs over micro-batch/DP/TP
//!   factorizations, ZeRO levels, checkpointing counts and the four
//!   offloading ratios (Eq. 4), using batched symbolic evaluation.
//! * **Inter-stage tuning** ([`solve_inter_stage`]) — an MILP over the
//!   per-stage Pareto samples choosing layer counts and frontier points
//!   that minimize the imbalance-aware pipeline objective (Eq. 1/2),
//!   solved with `mist-milp` and cross-checked by exhaustive enumeration
//!   on small instances.
//! * **The driver** ([`Tuner`]) — enumerates gradient-accumulation steps
//!   and stage counts/device assignments, runs the two levels, and emits
//!   the best [`mist_schedule::TrainingPlan`].
//!
//! Search-space restrictions of prior systems (Megatron-LM, DeepSpeed,
//! Aceso, Alpa, uniform heuristics) are expressed as [`SearchSpace`]
//! presets — the methodology behind the paper's Fig. 13 breakdown.

mod certify;
mod driver;
mod inter;
mod intra;
mod pareto;
mod seed;
mod space;
mod specialize;

pub use certify::{certify_plan, CertBound, CertReport, PlanCertificate, StageCert};
pub use driver::{TuneOutcome, TuneStats, Tuner};
pub use inter::{
    enumerate_inter_stage, solve_inter_stage, solve_inter_stage_dp, solve_inter_stage_milp,
    solve_inter_stage_with_cutoff, InterStageSolution, StageChoice,
};
pub use intra::{FrontierKey, IntraStageTuner, ParetoPoint};
pub use pareto::{pareto_frontier, sample_frontier};
pub use seed::{BudgetProof, FrontierExport, FrontierRecord, SeedCandidate};
pub use space::{CkptMode, SearchSpace};
pub use specialize::Specializer;
