//! Frontier export/seed API for warm-started re-tuning.
//!
//! The planner service caches, next to each `TuneOutcome`, the sampled
//! per-stage Pareto frontiers the tune computed. A later query that
//! differs only in global batch size, node count, or memory cap can
//! *seed* its intra-stage sweep from those frontiers: whenever the new
//! sweep would enumerate exactly the same candidate rows, the cached
//! frontier is reused verbatim and the whole sweep is skipped.
//!
//! # Soundness
//!
//! A sampled frontier for a [`FrontierKey`] is a pure function of
//!
//! * the `(dp, tp, micro_batch)` candidate list (derived from the mesh,
//!   the gradient-accumulation step and the global batch),
//! * the stage role and in-flight microbatch count,
//! * the model/cluster/cost-db/interference context the tapes were
//!   compiled from, the search space, and the memory budget.
//!
//! Global batch and `G` influence the sweep *only* through the candidate
//! list, so a record is reusable exactly when its candidate list matches
//! the list the new sweep would enumerate — which [`FrontierExport::
//! lookup`] checks literally. The caller is responsible for only
//! installing seeds produced under an identical tape context (same
//! model, search space, interference model, and a tape-equivalent
//! cluster); the planner service enforces that via its cache
//! fingerprints.
//!
//! Budget deltas are governed by a [`BudgetProof`] attached to each
//! record, strongest first:
//!
//! * [`BudgetProof::StaticFit`] — interval analysis over the sweep
//!   domain proved every candidate's peak memory is at most `mem_hi`
//!   bytes, so memory cannot influence any row under *any* budget
//!   `>= mem_hi`, including budgets **below** the recorded one. This
//!   is the derived replacement for the old hand-written
//!   `budget_sensitive` flag: the claim comes out of the
//!   abstract-interpretation framework, not out of instrumenting the
//!   sweep.
//! * [`BudgetProof::Witness`] — the sweep itself observed that memory
//!   never bit (no OOM rejection and, under tuned checkpointing, every
//!   resolved `ckpt` equal to zero). Sound *upward* only: a smaller
//!   budget could have rejected rows the witness run kept.
//! * [`BudgetProof::Sensitive`] — memory influenced at least one row;
//!   only the exact recorded budget reproduces the sweep.
//!
//! [`FrontierRecord::reusable_under`] applies the rule.

use mist_graph::StageRole;
use mist_hardware::DeviceMesh;
use serde::{Deserialize, Serialize};

use crate::intra::ParetoPoint;

/// Why (and under which budgets) a cached frontier record reproduces
/// the sweep that produced it. See the module docs for the soundness
/// argument behind each variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetProof {
    /// Interval analysis bounded every candidate's peak memory by
    /// `mem_hi` bytes over the whole sweep domain: the rows are
    /// budget-independent under any budget `>= mem_hi`, even below
    /// the recorded one.
    StaticFit {
        /// Proven upper bound on peak memory (bytes) across all
        /// enumerated candidates and sweep points.
        mem_hi: f64,
    },
    /// The sweep observed that memory never influenced a row; sound
    /// for budgets at or above the recorded one only.
    Witness,
    /// Memory influenced at least one row (OOM rejection or a nonzero
    /// tuned checkpoint count); exact budget match required.
    Sensitive,
}

/// One `(dp, tp, micro_batch)` parallelism candidate, as enumerated by
/// the intra-stage sweep for a given mesh and `G`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeedCandidate {
    /// Data-parallel degree.
    pub dp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Micro-batch size `b = B / (dp · G)`.
    pub micro_batch: u64,
}

/// One cached frontier family: the sampled Pareto frontiers for every
/// layer count `1..=per_l.len()` of one `(mesh, role, inflight)` stage
/// shape, together with everything needed to decide reuse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierRecord {
    /// Stage device mesh.
    pub mesh: DeviceMesh,
    /// Pipeline role.
    pub role: StageRole,
    /// In-flight microbatches.
    pub inflight: u32,
    /// The exact candidate list the sweep enumerated. Reuse requires
    /// literal equality with the new sweep's list.
    pub candidates: Vec<SeedCandidate>,
    /// Per-GPU memory budget (bytes) the sweep ran under.
    pub budget: f64,
    /// Proof governing reuse under other budgets.
    pub proof: BudgetProof,
    /// `per_l[l - 1]` = sampled frontier for a stage of `l` layers.
    pub per_l: Vec<Vec<ParetoPoint>>,
}

impl FrontierRecord {
    /// Whether this record's frontiers are exactly what a sweep under
    /// `budget` would produce.
    pub fn reusable_under(&self, budget: f64) -> bool {
        budget == self.budget
            || match self.proof {
                BudgetProof::Sensitive => false,
                BudgetProof::Witness => budget >= self.budget,
                BudgetProof::StaticFit { mem_hi } => budget >= mem_hi,
            }
    }
}

/// The full set of frontier families one tune computed, in a canonical
/// deterministic order (so serialization is byte-stable).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontierExport {
    /// Deduplicated records, canonically sorted.
    pub records: Vec<FrontierRecord>,
}

/// Deterministic ordering index for [`StageRole`] (sorting only).
pub(crate) fn role_rank(role: StageRole) -> u8 {
    match role {
        StageRole::Only => 0,
        StageRole::First => 1,
        StageRole::Middle => 2,
        StageRole::Last => 3,
    }
}

impl FrontierExport {
    /// Whether the export carries no records (uniform-stage spaces).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finds a record whose sweep is provably identical to the one the
    /// caller is about to run: same stage shape, literally equal
    /// candidate list, at least `max_layers` layer families, and a
    /// compatible budget. Records are canonically ordered, so the first
    /// match is deterministic.
    pub fn lookup(
        &self,
        mesh: DeviceMesh,
        role: StageRole,
        inflight: u32,
        candidates: &[SeedCandidate],
        budget: f64,
        max_layers: u32,
    ) -> Option<&FrontierRecord> {
        self.records.iter().find(|r| {
            r.mesh == mesh
                && r.role == role
                && r.inflight == inflight
                && r.candidates == candidates
                && r.per_l.len() >= max_layers as usize
                && r.reusable_under(budget)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(budget: f64, proof: BudgetProof) -> FrontierRecord {
        FrontierRecord {
            mesh: DeviceMesh::new(1, 4),
            role: StageRole::Only,
            inflight: 1,
            candidates: vec![SeedCandidate {
                dp: 2,
                tp: 2,
                micro_batch: 4,
            }],
            budget,
            proof,
            per_l: vec![Vec::new(); 8],
        }
    }

    #[test]
    fn budget_reuse_rules() {
        let witness = record(10.0, BudgetProof::Witness);
        assert!(witness.reusable_under(10.0));
        assert!(witness.reusable_under(20.0), "upward reuse is sound");
        assert!(!witness.reusable_under(5.0), "downward reuse is not");
        let sensitive = record(10.0, BudgetProof::Sensitive);
        assert!(sensitive.reusable_under(10.0), "exact budget always ok");
        assert!(!sensitive.reusable_under(20.0));
        assert!(!sensitive.reusable_under(5.0));
        let proven = record(10.0, BudgetProof::StaticFit { mem_hi: 4.0 });
        assert!(proven.reusable_under(10.0));
        assert!(proven.reusable_under(20.0));
        assert!(
            proven.reusable_under(5.0),
            "static fit licenses downward reuse to mem_hi"
        );
        assert!(!proven.reusable_under(3.0), "but never below the bound");
    }

    #[test]
    fn lookup_requires_exact_candidates_and_length() {
        let rec = record(10.0, BudgetProof::Witness);
        let export = FrontierExport {
            records: vec![rec.clone()],
        };
        let mesh = DeviceMesh::new(1, 4);
        let cands = rec.candidates.clone();
        assert!(export
            .lookup(mesh, StageRole::Only, 1, &cands, 10.0, 8)
            .is_some());
        // Longer than recorded: no reuse.
        assert!(export
            .lookup(mesh, StageRole::Only, 1, &cands, 10.0, 9)
            .is_none());
        // Different candidate list: no reuse.
        let other = vec![SeedCandidate {
            dp: 4,
            tp: 1,
            micro_batch: 2,
        }];
        assert!(export
            .lookup(mesh, StageRole::Only, 1, &other, 10.0, 8)
            .is_none());
        // Different role / inflight: no reuse.
        assert!(export
            .lookup(mesh, StageRole::First, 1, &cands, 10.0, 8)
            .is_none());
        assert!(export
            .lookup(mesh, StageRole::Only, 2, &cands, 10.0, 8)
            .is_none());
    }
}
