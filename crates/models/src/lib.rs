//! Transformer model definitions for Mist: GPT-3, LLaMa and Falcon
//! families at the sizes of the paper's workload table (Table 4), plus the
//! structural layer description the symbolic tracer consumes.
//!
//! A model here is *shapes, parameter counts and an op list* — never
//! weights. Mist only reasons about time and memory, so this is all the
//! fidelity the original system extracts from `torch.fx` traces as well.

mod arch;
mod presets;
mod stats;

pub use arch::{AttentionImpl, Family, LayerOp, LayerOpKind, ModelSpec, Shard};
pub use presets::{falcon, gpt3, gpt3_with_layers, llama, ModelSize};
pub use stats::ModelStats;
