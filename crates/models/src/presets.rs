//! Model size presets matching the paper's workload table (Table 4).

use serde::{Deserialize, Serialize};

use crate::arch::{AttentionImpl, Family, ModelSpec};

/// Model scale from Table 4 (billions of parameters).
///
/// The motivating examples use "2.7B" and "7B"; those are the same
/// configurations as 2.6B / 6.7B (standard GPT-3 size ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelSize {
    /// ≈1.3B parameters: 24 layers × 2048 hidden.
    B1_3,
    /// ≈2.6B parameters: 32 layers × 2560 hidden.
    B2_6,
    /// ≈6.7B parameters: 32 layers × 4096 hidden.
    B6_7,
    /// ≈13B parameters: 40 layers × 5120 hidden.
    B13,
    /// ≈22B parameters: 48 layers × 6144 hidden.
    B22,
    /// ≈40B parameters: 48 layers × 8192 hidden (used in §6.3's A100 case).
    B40,
}

impl ModelSize {
    /// `(layers, hidden, heads)` of the preset.
    pub fn dims(self) -> (u32, u64, u64) {
        match self {
            ModelSize::B1_3 => (24, 2048, 16),
            ModelSize::B2_6 => (32, 2560, 32),
            ModelSize::B6_7 => (32, 4096, 32),
            ModelSize::B13 => (40, 5120, 40),
            ModelSize::B22 => (48, 6144, 48),
            ModelSize::B40 => (48, 8192, 64),
        }
    }

    /// All Table 4 sizes in ascending order.
    pub fn table4() -> [ModelSize; 5] {
        [
            ModelSize::B1_3,
            ModelSize::B2_6,
            ModelSize::B6_7,
            ModelSize::B13,
            ModelSize::B22,
        ]
    }

    /// Short label, e.g. `"2.6B"`.
    pub fn label(self) -> &'static str {
        match self {
            ModelSize::B1_3 => "1.3B",
            ModelSize::B2_6 => "2.6B",
            ModelSize::B6_7 => "6.7B",
            ModelSize::B13 => "13B",
            ModelSize::B22 => "22B",
            ModelSize::B40 => "40B",
        }
    }
}

/// Rounds `8h/3` up to a multiple of 256 (LLaMa's SwiGLU sizing rule).
fn swiglu_ffn(hidden: u64) -> u64 {
    let raw = 8 * hidden / 3;
    raw.div_ceil(256) * 256
}

/// Builds a GPT-3 model at a preset size.
pub fn gpt3(size: ModelSize, seq_len: u64, attention: AttentionImpl) -> ModelSpec {
    let (layers, hidden, heads) = size.dims();
    ModelSpec {
        family: Family::Gpt3,
        name: format!("GPT-3 {}", size.label()),
        num_layers: layers,
        hidden,
        heads,
        ffn_hidden: 4 * hidden,
        vocab: 50304,
        seq_len,
        attention,
    }
}

/// GPT-3 with an explicit layer count (Fig. 14's depth sweep).
pub fn gpt3_with_layers(
    size: ModelSize,
    num_layers: u32,
    seq_len: u64,
    attention: AttentionImpl,
) -> ModelSpec {
    let mut spec = gpt3(size, seq_len, attention);
    spec.num_layers = num_layers;
    spec.name = format!("GPT-3 {} ({} layers)", size.label(), num_layers);
    spec
}

/// Builds a LLaMa model at a preset size.
pub fn llama(size: ModelSize, seq_len: u64, attention: AttentionImpl) -> ModelSpec {
    let (layers, hidden, heads) = size.dims();
    ModelSpec {
        family: Family::Llama,
        name: format!("LLaMa {}", size.label()),
        num_layers: layers,
        hidden,
        heads,
        ffn_hidden: swiglu_ffn(hidden),
        vocab: 32000,
        seq_len,
        attention,
    }
}

/// Builds a Falcon model at a preset size.
pub fn falcon(size: ModelSize, seq_len: u64, attention: AttentionImpl) -> ModelSpec {
    let (layers, hidden, heads) = size.dims();
    ModelSpec {
        family: Family::Falcon,
        name: format!("Falcon {}", size.label()),
        num_layers: layers,
        hidden,
        heads,
        ffn_hidden: 4 * hidden,
        vocab: 65024,
        seq_len,
        attention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_total_params_match_labels() {
        // Within 10% of the nominal size.
        for (size, nominal) in [
            (ModelSize::B1_3, 1.3e9),
            (ModelSize::B2_6, 2.6e9),
            (ModelSize::B6_7, 6.7e9),
            (ModelSize::B13, 13e9),
            (ModelSize::B22, 22e9),
        ] {
            let spec = gpt3(size, 2048, AttentionImpl::Flash);
            let total = spec.total_params() as f64;
            let rel = (total - nominal).abs() / nominal;
            assert!(rel < 0.10, "{}: {total:.3e} vs {nominal:.1e}", spec.name);
        }
    }

    #[test]
    fn llama_and_falcon_sizes_are_comparable_to_gpt() {
        for size in ModelSize::table4() {
            let g = gpt3(size, 2048, AttentionImpl::Flash).total_params() as f64;
            let l = llama(size, 2048, AttentionImpl::Flash).total_params() as f64;
            let f = falcon(size, 2048, AttentionImpl::Flash).total_params() as f64;
            assert!((l / g - 1.0).abs() < 0.12, "llama {l:.3e} vs gpt {g:.3e}");
            assert!((f / g - 1.0).abs() < 0.12, "falcon {f:.3e} vs gpt {g:.3e}");
        }
    }

    #[test]
    fn swiglu_rounding_is_multiple_of_256() {
        for h in [2048u64, 2560, 4096, 5120, 6144] {
            let f = swiglu_ffn(h);
            assert_eq!(f % 256, 0);
            assert!(f >= 8 * h / 3);
            assert!(f < 8 * h / 3 + 256);
        }
    }

    #[test]
    fn heads_divide_hidden() {
        for size in ModelSize::table4() {
            let (_, h, heads) = size.dims();
            assert_eq!(h % heads, 0, "{size:?}");
        }
    }

    #[test]
    fn custom_layer_count_applies() {
        let spec = gpt3_with_layers(ModelSize::B22, 80, 2048, AttentionImpl::Standard);
        assert_eq!(spec.num_layers, 80);
        assert!(spec.name.contains("80 layers"));
    }
}
