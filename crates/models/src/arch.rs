//! Architectural description of one transformer model.

use serde::{Deserialize, Serialize};

/// Model family, selecting the layer structure (paper §6.1):
///
/// * GPT-3 — classic pre-LN decoder (LayerNorm, GeLU MLP, learned
///   positional embeddings).
/// * LLaMa — pre-RMSNorm, rotary embeddings, gated (SwiGLU) MLP.
/// * Falcon — *parallel* attention + MLP sharing one residual, which cuts
///   the per-layer tensor-parallel all-reduces from two to one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// GPT-3 style decoder.
    Gpt3,
    /// LLaMa style decoder.
    Llama,
    /// Falcon style decoder with parallel attention/MLP.
    Falcon,
}

impl Family {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Gpt3 => "GPT-3",
            Family::Llama => "LLaMa",
            Family::Falcon => "Falcon",
        }
    }
}

/// Which attention kernel the model runs (paper §6.1: FlashAttention is
/// the "real-world" default; Fig. 12 disables it for Aceso comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionImpl {
    /// Unfused attention materializing the s×s score tensor.
    Standard,
    /// Fused FlashAttention: no s² activations, better efficiency.
    Flash,
}

/// Megatron-style tensor-parallel sharding of a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shard {
    /// Column-parallel: output dimension sharded, input replicated.
    Column,
    /// Row-parallel: input dimension sharded, output needs an all-reduce.
    Row,
    /// Replicated on every TP rank (norms, embeddings in our model).
    Replicated,
}

/// One operator in the traced layer structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerOp {
    /// Stable name for rendering and debugging (e.g. `"attn.qkv_proj"`).
    pub name: &'static str,
    /// What the op is, with its intrinsic dimensions.
    pub kind: LayerOpKind,
}

/// Operator kinds appearing in a transformer layer.
///
/// Dimensions are *logical* (unsharded); the analyzer divides by the TP
/// size according to the `Shard` annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerOpKind {
    /// Dense linear `in_dim → out_dim` over every token.
    Linear {
        /// Input feature dimension.
        in_dim: u64,
        /// Output feature dimension.
        out_dim: u64,
        /// TP sharding pattern.
        shard: Shard,
    },
    /// Self-attention core (QKᵀ, softmax, PV); heads are TP-sharded.
    Attention,
    /// LayerNorm or RMSNorm over the hidden dimension (family-dependent).
    Norm,
    /// Elementwise activation/gating over `elems_per_token · b · s` values
    /// (GeLU: ffn; SwiGLU gate-mul: ffn; rotary: h).
    Elementwise {
        /// Number of elements per token this op touches.
        elems_per_token: u64,
        /// Whether the input must be stashed for the backward pass.
        saves_input: bool,
    },
    /// Residual add (no saved activations; backward is a pass-through).
    Residual,
    /// Tensor-parallel all-reduce over the activations (b·s·h·2 bytes).
    /// Appears after row-parallel linears; this is GPU↔GPU (NCCL) time,
    /// not compute.
    TpAllReduce,
}

/// Complete static description of a model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Family selecting the layer structure.
    pub family: Family,
    /// Human-readable name, e.g. `"GPT-3 2.6B"`.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden dimension `h`.
    pub hidden: u64,
    /// Attention head count (divides `hidden`).
    pub heads: u64,
    /// MLP inner dimension (4h for GPT/Falcon; SwiGLU-rounded ~8h/3 for LLaMa).
    pub ffn_hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Sequence length of the training workload.
    pub seq_len: u64,
    /// Attention kernel.
    pub attention: AttentionImpl,
}

impl ModelSpec {
    /// Parameter count of one transformer layer (no biases, per §6.1).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden;
        let f = self.ffn_hidden;
        let attn = 4 * h * h; // Q, K, V, O projections.
        let mlp = match self.family {
            Family::Llama => 3 * h * f, // Gate, up, down.
            Family::Gpt3 | Family::Falcon => 2 * h * f,
        };
        let norms = match self.family {
            Family::Falcon => h, // Single shared pre-norm.
            _ => 2 * h,
        };
        attn + mlp + norms
    }

    /// Parameters outside the transformer stack (embeddings, final norm,
    /// untied LM head counted once — we model tied embeddings).
    pub fn embedding_params(&self) -> u64 {
        let pos = match self.family {
            Family::Gpt3 => self.seq_len * self.hidden, // Learned positions.
            _ => 0,                                     // Rotary.
        };
        self.vocab * self.hidden + pos + self.hidden
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + self.embedding_params()
    }

    /// The number of TP all-reduces per layer and direction (Falcon's
    /// parallel attention/MLP halves it — paper §6.1).
    pub fn tp_allreduces_per_layer(&self) -> u32 {
        match self.family {
            Family::Falcon => 1,
            _ => 2,
        }
    }

    /// The traced op structure of one transformer layer, in execution
    /// order. This is what the symbolic analyzer walks (paper Fig. 9).
    pub fn layer_ops(&self) -> Vec<LayerOp> {
        let h = self.hidden;
        let f = self.ffn_hidden;
        let mut ops = Vec::new();
        let push = |ops: &mut Vec<LayerOp>, name: &'static str, kind: LayerOpKind| {
            ops.push(LayerOp { name, kind });
        };
        match self.family {
            Family::Gpt3 => {
                push(&mut ops, "ln_1", LayerOpKind::Norm);
                push(
                    &mut ops,
                    "attn.qkv_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: 3 * h,
                        shard: Shard::Column,
                    },
                );
                push(&mut ops, "attn.core", LayerOpKind::Attention);
                push(
                    &mut ops,
                    "attn.out_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                push(&mut ops, "attn.allreduce", LayerOpKind::TpAllReduce);
                push(&mut ops, "residual_1", LayerOpKind::Residual);
                push(&mut ops, "ln_2", LayerOpKind::Norm);
                push(
                    &mut ops,
                    "mlp.fc_in",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: f,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "mlp.gelu",
                    LayerOpKind::Elementwise {
                        elems_per_token: f,
                        saves_input: true,
                    },
                );
                push(
                    &mut ops,
                    "mlp.fc_out",
                    LayerOpKind::Linear {
                        in_dim: f,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                push(&mut ops, "mlp.allreduce", LayerOpKind::TpAllReduce);
                push(&mut ops, "residual_2", LayerOpKind::Residual);
            }
            Family::Llama => {
                push(&mut ops, "rms_1", LayerOpKind::Norm);
                push(
                    &mut ops,
                    "attn.qkv_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: 3 * h,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "attn.rotary",
                    LayerOpKind::Elementwise {
                        elems_per_token: 2 * h,
                        saves_input: false,
                    },
                );
                push(&mut ops, "attn.core", LayerOpKind::Attention);
                push(
                    &mut ops,
                    "attn.out_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                push(&mut ops, "attn.allreduce", LayerOpKind::TpAllReduce);
                push(&mut ops, "residual_1", LayerOpKind::Residual);
                push(&mut ops, "rms_2", LayerOpKind::Norm);
                push(
                    &mut ops,
                    "mlp.gate_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: f,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "mlp.up_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: f,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "mlp.swiglu",
                    LayerOpKind::Elementwise {
                        elems_per_token: 2 * f,
                        saves_input: true,
                    },
                );
                push(
                    &mut ops,
                    "mlp.down_proj",
                    LayerOpKind::Linear {
                        in_dim: f,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                push(&mut ops, "mlp.allreduce", LayerOpKind::TpAllReduce);
                push(&mut ops, "residual_2", LayerOpKind::Residual);
            }
            Family::Falcon => {
                push(&mut ops, "ln", LayerOpKind::Norm);
                push(
                    &mut ops,
                    "attn.qkv_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: 3 * h,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "attn.rotary",
                    LayerOpKind::Elementwise {
                        elems_per_token: 2 * h,
                        saves_input: false,
                    },
                );
                push(&mut ops, "attn.core", LayerOpKind::Attention);
                push(
                    &mut ops,
                    "attn.out_proj",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                push(
                    &mut ops,
                    "mlp.fc_in",
                    LayerOpKind::Linear {
                        in_dim: h,
                        out_dim: f,
                        shard: Shard::Column,
                    },
                );
                push(
                    &mut ops,
                    "mlp.gelu",
                    LayerOpKind::Elementwise {
                        elems_per_token: f,
                        saves_input: true,
                    },
                );
                push(
                    &mut ops,
                    "mlp.fc_out",
                    LayerOpKind::Linear {
                        in_dim: f,
                        out_dim: h,
                        shard: Shard::Row,
                    },
                );
                // Parallel paths share one all-reduce and one residual.
                push(&mut ops, "allreduce", LayerOpKind::TpAllReduce);
                push(&mut ops, "residual", LayerOpKind::Residual);
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{falcon, gpt3, llama, ModelSize};

    #[test]
    fn layer_structure_has_expected_allreduce_count() {
        for (spec, want) in [
            (gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash), 2u32),
            (llama(ModelSize::B2_6, 2048, AttentionImpl::Flash), 2),
            (falcon(ModelSize::B2_6, 2048, AttentionImpl::Flash), 1),
        ] {
            let count = spec
                .layer_ops()
                .iter()
                .filter(|op| matches!(op.kind, LayerOpKind::TpAllReduce))
                .count() as u32;
            assert_eq!(count, want, "{}", spec.name);
            assert_eq!(spec.tp_allreduces_per_layer(), want);
        }
    }

    #[test]
    fn llama_has_three_mlp_linears_gpt_two() {
        let count_linears = |spec: &ModelSpec| {
            spec.layer_ops()
                .iter()
                .filter(|op| matches!(op.kind, LayerOpKind::Linear { .. }))
                .count()
        };
        let g = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let l = llama(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        assert_eq!(count_linears(&g), 4); // qkv, out, fc_in, fc_out.
        assert_eq!(count_linears(&l), 5); // + gate.
    }

    #[test]
    fn params_per_layer_close_to_12h2() {
        for spec in [
            gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash),
            llama(ModelSize::B6_7, 2048, AttentionImpl::Flash),
            falcon(ModelSize::B6_7, 2048, AttentionImpl::Flash),
        ] {
            let got = spec.params_per_layer() as f64;
            let want = 12.0 * (spec.hidden * spec.hidden) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.05, "{}: {got} vs {want}", spec.name);
        }
    }
}
