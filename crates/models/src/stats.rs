//! Closed-form reference statistics for a model.
//!
//! These formulas are the textbook estimates (Megatron/Korthikanti-style);
//! the symbolic tracer in `mist-graph` derives the same quantities from the
//! op list, and integration tests assert both agree. Higher layers use the
//! closed forms for quick sanity checks and documentation dumps.

use crate::arch::{AttentionImpl, ModelSpec};

/// Reference statistics calculator for one model.
#[derive(Debug, Clone)]
pub struct ModelStats<'m> {
    spec: &'m ModelSpec,
}

impl<'m> ModelStats<'m> {
    /// Wraps a model spec.
    pub fn new(spec: &'m ModelSpec) -> Self {
        ModelStats { spec }
    }

    /// Forward FLOPs of one transformer layer for micro-batch `b`
    /// (per-GPU FLOPs are this divided by the TP size).
    ///
    /// `2·tokens·params` for the GEMMs plus `4·b·s²·h` for attention.
    pub fn layer_fwd_flops(&self, b: u64) -> f64 {
        let s = self.spec.seq_len;
        let tokens = (b * s) as f64;
        let gemm_params = (self.spec.params_per_layer()
            - match self.spec.family {
                crate::arch::Family::Falcon => self.spec.hidden,
                _ => 2 * self.spec.hidden,
            }) as f64;
        let attn = 4.0 * b as f64 * (s * s) as f64 * self.spec.hidden as f64;
        2.0 * tokens * gemm_params + attn
    }

    /// Bytes of fp16 activations stashed per layer per micro-batch when the
    /// layer is *not* checkpointed, for TP degree `tp`.
    ///
    /// Without FlashAttention the s² score tensor dominates at long
    /// sequence lengths — the effect motivating Fig. 12's memory pressure.
    pub fn layer_saved_activation_bytes(&self, b: u64, tp: u64) -> f64 {
        let s = self.spec.seq_len as f64;
        let h = self.spec.hidden as f64;
        let f = self.spec.ffn_hidden as f64;
        let heads = self.spec.heads as f64;
        let bf = b as f64;
        let tpf = tp as f64;
        // Replicated saves: norm inputs + residual streams.
        let replicated = 2.0 * bf * s * h * self.norm_count();
        // Sharded saves: qkv (3h), attn out (h), proj input (h), MLP
        // intermediates (about 2f for GPT, 3f for gated LLaMa).
        let mlp_elems = match self.spec.family {
            crate::arch::Family::Llama => 3.0 * f,
            _ => 2.0 * f,
        };
        let sharded = 2.0 * bf * s * (3.0 * h + 2.0 * h + mlp_elems) / tpf;
        let attention = match self.spec.attention {
            AttentionImpl::Flash => 4.0 * bf * heads * s / tpf, // Softmax LSE stats (fp32).
            AttentionImpl::Standard => 2.0 * bf * heads * s * s / tpf * 1.5, // Scores + probs (amortized).
        };
        replicated + sharded + attention
    }

    /// Bytes of the single boundary activation a checkpointed layer keeps.
    pub fn layer_boundary_bytes(&self, b: u64) -> f64 {
        2.0 * (b * self.spec.seq_len * self.spec.hidden) as f64
    }

    fn norm_count(&self) -> f64 {
        match self.spec.family {
            crate::arch::Family::Falcon => 1.0,
            _ => 2.0,
        }
    }

    /// Mixed-precision model-state bytes per layer (unsharded): fp16
    /// params (2/param) + fp16 grads (2) + fp32 master params, momentum,
    /// variance (12) — the standard 16 bytes/param of ZeRO's analysis.
    pub fn layer_state_bytes(&self) -> f64 {
        16.0 * self.spec.params_per_layer() as f64
    }

    /// Breakdown of the 16 bytes/param: `(param16, grad16, optimizer32)`.
    pub fn state_breakdown_per_param(&self) -> (f64, f64, f64) {
        (2.0, 2.0, 12.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{gpt3, llama, ModelSize};

    #[test]
    fn flops_scale_linearly_with_microbatch_up_to_attention() {
        let spec = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let st = ModelStats::new(&spec);
        let f1 = st.layer_fwd_flops(1);
        let f4 = st.layer_fwd_flops(4);
        assert!((f4 / f1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn standard_attention_saves_far_more_than_flash() {
        let mut spec = gpt3(ModelSize::B2_6, 4096, AttentionImpl::Flash);
        let flash = ModelStats::new(&spec).layer_saved_activation_bytes(1, 1);
        spec.attention = AttentionImpl::Standard;
        let std = ModelStats::new(&spec).layer_saved_activation_bytes(1, 1);
        assert!(std > 2.0 * flash, "std {std:.3e} flash {flash:.3e}");
    }

    #[test]
    fn tp_shards_most_of_the_activations() {
        let spec = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
        let st = ModelStats::new(&spec);
        let tp1 = st.layer_saved_activation_bytes(2, 1);
        let tp4 = st.layer_saved_activation_bytes(2, 4);
        assert!(tp4 < tp1);
        assert!(tp4 > tp1 / 4.0, "replicated part must remain");
    }

    #[test]
    fn boundary_is_much_smaller_than_full_activations() {
        let spec = llama(ModelSize::B6_7, 2048, AttentionImpl::Flash);
        let st = ModelStats::new(&spec);
        assert!(st.layer_boundary_bytes(2) * 4.0 < st.layer_saved_activation_bytes(2, 1));
    }

    #[test]
    fn state_bytes_are_16x_params() {
        let spec = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let st = ModelStats::new(&spec);
        assert_eq!(
            st.layer_state_bytes(),
            16.0 * spec.params_per_layer() as f64
        );
        let (p, g, o) = st.state_breakdown_per_param();
        assert_eq!(p + g + o, 16.0);
    }
}
