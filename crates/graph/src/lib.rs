//! Symbolic computational-graph analysis for Mist (paper §5.2).
//!
//! The pipeline mirrors the paper's symbolic analysis system:
//!
//! 1. **Tracing** ([`trace_layer`]) — walk a model's layer structure
//!    and materialize a [`TracedLayer`]: one op per kernel with its cost
//!    database query, output/saved tensor sizes, and communication bytes.
//!    This substitutes the paper's symbolic `torch.fx` trace; shapes come
//!    from the model spec instead of fake tensors.
//! 2. **Liveness analysis** ([`profile_layer`]) — forward and
//!    (fake-)backward walks over the traced ops to find the transient
//!    memory high-water mark, the bytes stashed for backward, and the
//!    aggregate compute/communication times per layer.
//! 3. **Stage analysis** ([`StageAnalyzer`]) — assemble, for one
//!    candidate (micro-batch, DP, TP, mesh) tuple, *symbolic expressions*
//!    for peak memory and for the four per-stream time totals of both a
//!    stable microbatch and the first/last microbatch delta, compiled into
//!    batched-evaluation tapes over the optimization symbols
//!    `(L, ckpt, zero, wo, go, oo, ao, inflight)`.
//!
//! The tapes are where the search-space explosion is tamed: one build, then
//! tens of thousands of configurations evaluated by value substitution.

mod analyze;
mod liveness;
mod op;
mod trace;

pub use analyze::{
    stage_domains, stage_roots, stage_unit_registry, sweep_frozen_symbols, StageAnalyzer,
    StageCandidate, StageConfigValues, StagePoint, StageRole, StageTapes, StreamTapes,
    SWEEP_VARYING, SYMS,
};
pub use liveness::{profile_layer, LayerProfile};
pub use op::{TracedOp, TracedOpKind};
pub use trace::{trace_layer, TracedLayer};
