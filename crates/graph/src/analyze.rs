//! Inter-layer (stage-level) symbolic analysis.
//!
//! For a concrete candidate `(mesh, dp, tp, micro-batch, role)`, the
//! analyzer builds symbolic expressions — over the optimization symbols in
//! [`SYMS`] — for:
//!
//! * peak memory of the forward and backward passes (feasibility, Eq. 4),
//! * the four per-stream time totals (compute, NCCL, D2H, H2D) of the
//!   forward and backward phases of a *stable* microbatch, and
//! * the *extra* stream totals only incurred by the first microbatch
//!   (parameter all-gather, optimizer-state swaps, the decoupled &
//!   repositioned optimizer step) and the last microbatch (gradient
//!   reduction) — paper §5.1 and Fig. 4/10.
//!
//! The expressions are compiled into [`Tape`]s so the tuner can evaluate
//! whole grids of `(ckpt, zero, wo, go, oo, ao)` values per candidate in
//! one batched pass — the paper's key idea #2.
//!
//! # Modeling conventions
//!
//! * `micro_batch` is the per-DP-rank microbatch size `b`; the global
//!   batch is `b · dp · G`.
//! * All byte quantities are per GPU. Model states follow the
//!   mixed-precision 16 bytes/param split (2 fp16 params + 2 fp16 grads +
//!   12 fp32 optimizer) of the ZeRO analysis.
//! * The embedding block lives on the first stage and the (untied) LM head
//!   on the last stage, matching Megatron-LM's placement.
//! * The decoupled optimizer step never raises peak memory: Mist
//!   repositions each layer's step right before its first forward
//!   (paper §5.1), so `max(mem_fwd, mem_bwd)` is the binding constraint.
//! * Interference between the streams is *not* applied here — the tuner
//!   folds each 4-tuple through the interference model `I` (Eq. 5/6).

use mist_hardware::{
    all_gather_time, all_reduce_time, p2p_time, ClusterSpec, DeviceMesh, OpCostDb, OpKind, OpQuery,
};
use mist_irlint::{DomainMap, SymbolDomain, Unit, UnitRegistry};
use mist_models::ModelSpec;
use mist_symbolic::{
    BatchBindings, CmpOp, CompiledWorkspace, Context, EvalWorkspace, FrozenSymbols, Program,
    SymbolicError, Tape,
};
use serde::{Deserialize, Serialize};

use crate::liveness::{profile_layer, LayerProfile};
use crate::trace::{trace_embedding, trace_head, trace_layer};

/// The optimization symbols every stage tape is expressed over, in
/// canonical order:
///
/// `L` — layers in the stage; `ckpt` — checkpointed (recomputed) layers;
/// `zero` — ZeRO level 0–3; `wo`/`go`/`oo`/`ao` — weight / gradient /
/// optimizer-state / activation offloading ratios in `[0, 1]`;
/// `inflight` — in-flight microbatches at this stage under 1F1B
/// (`min(G, S − stage_index)`).
pub const SYMS: [&str; 8] = ["L", "ckpt", "zero", "wo", "go", "oo", "ao", "inflight"];

/// The search knobs a frontier sweep varies *within* one specialization
/// group: every other symbol in [`SYMS`] is frozen by
/// [`sweep_frozen_symbols`] (with `ckpt` frozen too when the sweep pins
/// it, e.g. under `CkptMode::None`).
pub const SWEEP_VARYING: [&str; 2] = ["L", "ckpt"];

/// The frozen-symbol set of one frontier-sweep group, for
/// [`mist_symbolic::specialize`].
///
/// The tuner's intra-stage sweep enumerates the cross product of layer
/// counts, ZeRO levels and offload combinations; grouping rows by
/// `(zero, offload)` leaves only `L` (and `ckpt`, when it is searched)
/// varying inside a group, so everything else specializes away.
/// `ckpt: Some(v)` additionally freezes the checkpoint knob — pass it
/// when the sweep pins checkpointing (e.g. fully off).
pub fn sweep_frozen_symbols(
    zero: u8,
    offload: [f64; 4],
    inflight: u32,
    ckpt: Option<u32>,
) -> FrozenSymbols {
    let mut pairs = vec![
        ("zero", f64::from(zero)),
        ("wo", offload[0]),
        ("go", offload[1]),
        ("oo", offload[2]),
        ("ao", offload[3]),
        ("inflight", f64::from(inflight)),
    ];
    if let Some(c) = ckpt {
        pairs.push(("ckpt", f64::from(c)));
    }
    FrozenSymbols::new(pairs)
}

/// Declared units of the [`SYMS`] symbols and the stage roots, for the
/// `mist-irlint` static analyzer.
///
/// The byte and second scales of the stage cost model live in *constant*
/// coefficients (bytes per parameter, seconds per byte, ...), which the
/// SSA IR does not annotate; the residual symbolic dimension of every
/// root is therefore a pure count (`elements`, carried by `L` and
/// `ckpt`). Declaring that residual still catches the regressions that
/// matter at this layer: a raw offload ratio summed into a memory
/// estimate, an `L²` term sneaking into a linear cost, or a guard
/// comparing a ZeRO level against a layer count.
pub fn stage_unit_registry() -> UnitRegistry {
    let mut registry = UnitRegistry::new()
        .declare_symbol("L", Unit::ELEMENTS)
        .declare_symbol("ckpt", Unit::ELEMENTS)
        .declare_symbol("zero", Unit::DIMENSIONLESS)
        .declare_symbol("wo", Unit::DIMENSIONLESS)
        .declare_symbol("go", Unit::DIMENSIONLESS)
        .declare_symbol("oo", Unit::DIMENSIONLESS)
        .declare_symbol("ao", Unit::DIMENSIONLESS)
        // Microbatch counts multiply activation footprints (bytes · count),
        // so they are declared dimensionless rather than as a second,
        // incompatible count dimension.
        .declare_symbol("inflight", Unit::DIMENSIONLESS);
    for root in [
        "mem_fwd",
        "mem_bwd",
        "mem_resident",
        "mem_act_per_mb",
        "mem_transient_fwd",
        "mem_transient_bwd",
        "fwd_compute",
        "fwd_nccl",
        "fwd_d2h",
        "fwd_h2d",
        "bwd_compute",
        "bwd_nccl",
        "bwd_d2h",
        "bwd_h2d",
        "first_compute",
        "first_nccl",
        "first_d2h",
        "first_h2d",
        "last_compute",
        "last_nccl",
        "last_d2h",
        "last_h2d",
    ] {
        registry = registry.declare_root(root, Unit::ELEMENTS);
    }
    registry
}

/// The widest symbol domains any tuning sweep can bind for a model with
/// `num_layers` transformer layers, including the ordering fact
/// `ckpt <= L` (you cannot checkpoint more layers than the stage holds).
///
/// Restricted search spaces narrow these further (see
/// `SearchSpace::symbol_domains` in `mist-tuner`); this default is what
/// the debug-build lint inside [`StageAnalyzer::analyze`] verifies
/// against, so its guarantees hold for *every* sweep.
pub fn stage_domains(num_layers: u32) -> DomainMap {
    let l = f64::from(num_layers.max(1));
    DomainMap::new()
        .declare("L", SymbolDomain::new(1.0, l, true))
        .declare("ckpt", SymbolDomain::new(0.0, l, true))
        .declare("zero", SymbolDomain::new(0.0, 3.0, true))
        .declare("wo", SymbolDomain::new(0.0, 1.0, false))
        .declare("go", SymbolDomain::new(0.0, 1.0, false))
        .declare("oo", SymbolDomain::new(0.0, 1.0, false))
        .declare("ao", SymbolDomain::new(0.0, 1.0, false))
        // 1F1B keeps at most `num_stages` microbatches in flight; bound it
        // by a generous constant so the proof covers any pipeline depth.
        .declare("inflight", SymbolDomain::new(1.0, 4096.0, true))
        .declare_le("ckpt", "L")
}

/// Where a stage sits in the pipeline (decides embedding/head ownership).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageRole {
    /// First of several stages: owns the input embedding.
    First,
    /// Interior stage: transformer layers only.
    Middle,
    /// Last of several stages: owns the LM head and loss.
    Last,
    /// Single-stage pipeline: owns both ends.
    Only,
}

impl StageRole {
    /// Whether this stage holds the input embedding.
    pub fn has_embedding(self) -> bool {
        matches!(self, StageRole::First | StageRole::Only)
    }

    /// Whether this stage holds the LM head.
    pub fn has_head(self) -> bool {
        matches!(self, StageRole::Last | StageRole::Only)
    }

    /// Whether the stage has a pipeline neighbour (incurs p2p traffic).
    pub fn has_p2p(self) -> bool {
        !matches!(self, StageRole::Only)
    }

    /// The role of stage `index` in a pipeline of `num_stages`.
    pub fn of(index: u32, num_stages: u32) -> StageRole {
        assert!(index < num_stages);
        match (index, num_stages) {
            (_, 1) => StageRole::Only,
            (0, _) => StageRole::First,
            (i, s) if i + 1 == s => StageRole::Last,
            _ => StageRole::Middle,
        }
    }
}

/// A concrete intra-stage parallelism candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCandidate {
    /// Devices assigned to the stage.
    pub mesh: DeviceMesh,
    /// Data-parallel degree (`dp · tp == mesh.total()`).
    pub dp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Per-DP-rank microbatch size `b`.
    pub micro_batch: u64,
    /// Pipeline position.
    pub role: StageRole,
}

/// The four stream tapes of one schedule phase.
#[derive(Debug, Clone)]
pub struct StreamTapes {
    /// GPU compute seconds.
    pub compute: Tape,
    /// GPU↔GPU (NCCL) seconds.
    pub nccl: Tape,
    /// Device→host copy seconds.
    pub d2h: Tape,
    /// Host→device copy seconds.
    pub h2d: Tape,
}

impl StreamTapes {
    /// Batched evaluation of all four streams; returns one `[f64; 4]` row
    /// per batch entry.
    ///
    /// Hot paths should prefer the fused [`StageTapes::eval_batch_fused`]
    /// pass, which evaluates all 22 stage roots at once.
    pub fn eval_batch(&self, batch: &BatchBindings) -> Vec<[f64; 4]> {
        let c = self.compute.eval_batch(batch).expect("compute tape");
        let n = self.nccl.eval_batch(batch).expect("nccl tape");
        let d = self.d2h.eval_batch(batch).expect("d2h tape");
        let h = self.h2d.eval_batch(batch).expect("h2d tape");
        c.into_iter()
            .zip(n)
            .zip(d)
            .zip(h)
            .map(|(((c, n), d), h)| [c, n, d, h])
            .collect()
    }
}

/// Root indices of the fused [`StageTapes::program`].
///
/// The six memory roots come first, then the four schedule phases with
/// their streams in `[compute, nccl, d2h, h2d]` order (the same order as
/// the [`StagePoint`] arrays).
pub mod stage_roots {
    /// Peak forward-pass memory (bytes).
    pub const MEM_FWD: usize = 0;
    /// Peak backward-pass memory (bytes).
    pub const MEM_BWD: usize = 1;
    /// Iteration-resident bytes.
    pub const MEM_RESIDENT: usize = 2;
    /// Stashed activation bytes per in-flight microbatch.
    pub const MEM_ACT_PER_MB: usize = 3;
    /// Transient forward working bytes.
    pub const MEM_TRANSIENT_FWD: usize = 4;
    /// Transient backward working bytes.
    pub const MEM_TRANSIENT_BWD: usize = 5;
    /// First stream root of the stable forward phase.
    pub const FWD: usize = 6;
    /// First stream root of the stable backward phase.
    pub const BWD: usize = 10;
    /// First stream root of the first-microbatch extras.
    pub const FIRST_EXTRA: usize = 14;
    /// First stream root of the last-microbatch extras.
    pub const LAST_EXTRA: usize = 18;
    /// Total number of roots.
    pub const COUNT: usize = 22;
}

/// Compiled symbolic performance model of one stage candidate.
#[derive(Debug, Clone)]
pub struct StageTapes {
    /// The candidate these tapes describe.
    pub candidate: StageCandidate,
    /// All 22 stage expressions fused into one multi-root program with
    /// cross-root CSE and register allocation. Root order is given by
    /// [`stage_roots`]. Hot paths evaluate this once per batch instead of
    /// looping over the individual tapes below.
    pub program: Program,
    /// Two-root (`mem_fwd`, `mem_bwd`) program for feasibility probes
    /// (e.g. the tuner's analytic minimal-checkpoint solve), which only
    /// need the peak-memory pair and not the full 22 roots.
    pub mem_pair: Program,
    /// Peak forward-pass memory in bytes.
    pub mem_fwd: Tape,
    /// Peak backward-pass memory in bytes.
    pub mem_bwd: Tape,
    /// Memory decomposition: bytes resident for the whole iteration
    /// (model states after sharding/offloading + working sets + staging
    /// buffers).
    pub mem_resident: Tape,
    /// Memory decomposition: activation bytes stashed per in-flight
    /// microbatch (after checkpointing and activation offload).
    pub mem_act_per_mb: Tape,
    /// Memory decomposition: transient working bytes during forward.
    pub mem_transient_fwd: Tape,
    /// Memory decomposition: transient working bytes during backward
    /// (includes the recompute buffer when checkpointing is on).
    pub mem_transient_bwd: Tape,
    /// Stable-microbatch forward-phase stream times.
    pub fwd: StreamTapes,
    /// Stable-microbatch backward-phase stream times (includes
    /// recomputation of checkpointed layers).
    pub bwd: StreamTapes,
    /// First-microbatch extras (optimizer step, state swap-ins,
    /// updated-parameter all-gather).
    pub first_extra: StreamTapes,
    /// Last-microbatch extras (gradient reduction, state swap-outs).
    pub last_extra: StreamTapes,
    /// The per-layer profile behind the tapes (for the simulator and for
    /// educational dumps).
    pub layer: LayerProfile,
    /// Bytes crossing each pipeline boundary per microbatch per direction.
    pub p2p_bytes: f64,
}

/// One evaluated configuration point (scalar convenience for tests and
/// for lowering a chosen plan to the simulator).
///
/// Stream arrays are ordered `[compute, nccl, d2h, h2d]`, matching
/// `mist_interference::StreamKind` up to the swap of the last two (the
/// interference model orders them `[compute, nccl, h2d, d2h]` — use
/// [`StagePoint::interference_tuple`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePoint {
    /// Peak forward memory (bytes).
    pub mem_fwd: f64,
    /// Peak backward memory (bytes).
    pub mem_bwd: f64,
    /// Iteration-resident bytes (states, working sets, buffers).
    pub mem_resident: f64,
    /// Stashed activation bytes per in-flight microbatch.
    pub mem_act_per_mb: f64,
    /// Transient forward working bytes.
    pub mem_transient_fwd: f64,
    /// Transient backward working bytes.
    pub mem_transient_bwd: f64,
    /// Forward-phase stream seconds.
    pub fwd: [f64; 4],
    /// Backward-phase stream seconds.
    pub bwd: [f64; 4],
    /// First-microbatch extra stream seconds.
    pub first_extra: [f64; 4],
    /// Last-microbatch extra stream seconds.
    pub last_extra: [f64; 4],
}

impl StagePoint {
    /// Peak memory over both passes (the Eq. 4 constraint quantity).
    pub fn mem_peak(&self) -> f64 {
        self.mem_fwd.max(self.mem_bwd)
    }

    /// Reorders a stream array into the interference model's
    /// `[compute, nccl, h2d, d2h]` convention.
    pub fn interference_tuple(streams: [f64; 4]) -> [f64; 4] {
        [streams[0], streams[1], streams[3], streams[2]]
    }
}

/// Assignment of values to the [`SYMS`] symbols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageConfigValues {
    /// Layers in the stage.
    pub layers: u32,
    /// Checkpointed layers (`<= layers`).
    pub ckpt: u32,
    /// ZeRO level 0–3.
    pub zero: u8,
    /// Weight offloading ratio.
    pub wo: f64,
    /// Gradient offloading ratio.
    pub go: f64,
    /// Optimizer-state offloading ratio.
    pub oo: f64,
    /// Activation offloading ratio.
    pub ao: f64,
    /// In-flight microbatches at this stage.
    pub inflight: u32,
}

impl StageConfigValues {
    /// A configuration with every optimization off.
    pub fn plain(layers: u32, inflight: u32) -> Self {
        StageConfigValues {
            layers,
            ckpt: 0,
            zero: 0,
            wo: 0.0,
            go: 0.0,
            oo: 0.0,
            ao: 0.0,
            inflight,
        }
    }

    /// Binding list in [`SYMS`] order.
    pub fn bindings(&self) -> [(&'static str, f64); 8] {
        [
            ("L", self.layers as f64),
            ("ckpt", self.ckpt as f64),
            ("zero", self.zero as f64),
            ("wo", self.wo),
            ("go", self.go),
            ("oo", self.oo),
            ("ao", self.ao),
            ("inflight", self.inflight as f64),
        ]
    }
}

/// Builds [`StageTapes`] for candidates against one model and cluster.
#[derive(Debug, Clone, Copy)]
pub struct StageAnalyzer<'a> {
    model: &'a ModelSpec,
    cluster: &'a ClusterSpec,
    db: &'a OpCostDb,
}

impl<'a> StageAnalyzer<'a> {
    /// Creates an analyzer.
    pub fn new(model: &'a ModelSpec, cluster: &'a ClusterSpec, db: &'a OpCostDb) -> Self {
        StageAnalyzer { model, cluster, db }
    }

    /// Traces, profiles and compiles the full symbolic model of one
    /// candidate. This is the expensive-once step; evaluating the result
    /// is cheap and batched.
    ///
    /// # Panics
    ///
    /// Panics if the candidate's `(dp, tp)` does not factor its mesh.
    pub fn analyze(&self, cand: &StageCandidate) -> StageTapes {
        assert!(
            cand.mesh.supports(cand.dp, cand.tp),
            "candidate (dp={}, tp={}) does not fit mesh {:?}",
            cand.dp,
            cand.tp,
            cand.mesh
        );
        let b = cand.micro_batch;
        let tp = cand.tp as u64;
        let dp = cand.dp;
        let tp_link = cand.mesh.tp_link(self.cluster, cand.tp);
        let dp_link = cand.mesh.dp_link(self.cluster, cand.dp, cand.tp);
        let gpu = &self.cluster.gpu;

        // --- Intra-layer pass: trace + liveness --------------------------
        let layer = profile_layer(&trace_layer(self.model, b, tp), self.db, tp_link);
        let embed = if cand.role.has_embedding() {
            Some(profile_layer(
                &trace_embedding(self.model, b, tp),
                self.db,
                tp_link,
            ))
        } else {
            None
        };
        let head = if cand.role.has_head() {
            Some(profile_layer(
                &trace_head(self.model, b, tp),
                self.db,
                tp_link,
            ))
        } else {
            None
        };

        // --- Symbolic inter-layer pass -----------------------------------
        let ctx = Context::new();
        let l = ctx.symbol("L");
        let ckpt = ctx.symbol("ckpt");
        let zero = ctx.symbol("zero");
        let wo = ctx.symbol("wo");
        let go = ctx.symbol("go");
        let oo = ctx.symbol("oo");
        let ao = ctx.symbol("ao");
        let inflight = ctx.symbol("inflight");
        let one = ctx.constant(1.0);
        let zero_c = ctx.constant(0.0);

        let z1 = ctx.cmp(CmpOp::Ge, zero, ctx.constant(1.0));
        let z2 = ctx.cmp(CmpOp::Ge, zero, ctx.constant(2.0));
        let z3 = ctx.cmp(CmpOp::Ge, zero, ctx.constant(3.0));

        // Parameter counts per GPU (TP-sharded), symbolic in L.
        let extra_params =
            embed.map_or(0.0, |e| e.params_per_gpu) + head.map_or(0.0, |h| h.params_per_gpu);
        let params = l * layer.params_per_gpu + extra_params;
        let p16 = params * 2.0; // fp16 parameter bytes
        let g16 = params * 2.0; // fp16 gradient bytes
        let opt32 = params * 12.0; // fp32 master + Adam moments

        let inv_dp = 1.0 / dp as f64;
        let sh_p = ctx.select(z3, ctx.constant(inv_dp), one);
        let sh_g = ctx.select(z2, ctx.constant(inv_dp), one);
        let sh_o = ctx.select(z1, ctx.constant(inv_dp), one);

        // --- Memory ------------------------------------------------------
        let resident_states =
            p16 * sh_p * (1.0 - wo) + g16 * sh_g * (1.0 - go) + opt32 * sh_o * (1.0 - oo);

        // ZeRO-3 / weight-offload working set: two layers' fp16 params
        // (current + prefetched next), per the overlap schedule (Fig. 7).
        let pl16 = 2.0 * layer.params_per_gpu;
        let gathered = ctx.constant(2.0 * pl16);
        let z3_working = ctx.select(z3, gathered, zero_c);
        let wo_pos = ctx.cmp(CmpOp::Gt, wo, zero_c);
        let wo_working = ctx.select(wo_pos, gathered, zero_c);
        let working_p = z3_working.max(wo_working);

        // Per-microbatch resident activations after offloading.
        let acts_per_mb =
            ((l - ckpt) * layer.saved_act_bytes + ckpt * layer.boundary_bytes) * (1.0 - ao);
        // Activation-offload staging buffer: double-buffered one layer.
        let ao_pos = ctx.cmp(CmpOp::Gt, ao, zero_c);
        let ao_buffer = ctx.select(ao_pos, ctx.constant(2.0 * layer.saved_act_bytes), zero_c);

        let head_transient_fwd = head.map_or(0.0, |h| h.transient_fwd_bytes);
        let head_transient_bwd = head.map_or(0.0, |h| 2.0 * h.transient_bwd_bytes);
        let embed_transient = embed.map_or(0.0, |e| e.transient_fwd_bytes);
        let transient_fwd = layer
            .transient_fwd_bytes
            .max(head_transient_fwd)
            .max(embed_transient);
        let transient_bwd = layer.transient_bwd_bytes.max(head_transient_bwd);

        let mem_resident = resident_states + working_p + ao_buffer;
        let mem_fwd = mem_resident + inflight * acts_per_mb + transient_fwd;
        // Backward adds the recompute working set of one checkpointed
        // layer (its full activations are rebuilt before use).
        let ckpt_pos = ctx.cmp(CmpOp::Gt, ckpt, zero_c);
        let recompute_ws = ctx.select(ckpt_pos, ctx.constant(layer.saved_act_bytes), zero_c);
        let mem_transient_bwd = recompute_ws + transient_bwd;
        let mem_bwd = mem_resident + inflight * acts_per_mb + mem_transient_bwd;

        // --- Stable microbatch: forward phase ------------------------------
        let c_fwd = l * layer.fwd_compute
            + embed.map_or(0.0, |e| e.fwd_compute)
            + head.map_or(0.0, |h| h.fwd_compute);
        // ZeRO-3 per-layer parameter all-gather, once per phase.
        let ag_layer = all_gather_time(pl16, dp, dp_link);
        let z3_ag = ctx.select(z3, ctx.constant(ag_layer), zero_c);
        let p2p_bytes = layer.boundary_bytes;
        let p2p_one = if cand.role.has_p2p() {
            // A stage mesh smaller than a node keeps most boundaries
            // inside a node (PCIe/NVLink); node-sized or larger stages
            // hand activations to the next node over the shared NIC, with
            // all of the boundary's dp·tp ranks sending at once.
            let link =
                if cand.mesh.total() < self.cluster.gpus_per_node || self.cluster.num_nodes == 1 {
                    self.cluster.intra_node
                } else {
                    self.cluster.shared_inter_node(self.cluster.gpus_per_node)
                };
            p2p_time(p2p_bytes, link)
        } else {
            0.0
        };
        let role_comm_fwd =
            embed.map_or(0.0, |e| e.tp_comm_fwd) + head.map_or(0.0, |h| h.tp_comm_fwd);
        let nccl_fwd = l * (layer.tp_comm_fwd + z3_ag) + (role_comm_fwd + p2p_one);

        let acts_all = (l - ckpt) * layer.saved_act_bytes + ckpt * layer.boundary_bytes;
        let inv_pcie = 1.0 / gpu.pcie_bandwidth;
        // Activations stream out during forward.
        let d2h_fwd = ao * acts_all * inv_pcie;
        // Offloaded weights stream in for the forward pass.
        let h2d_fwd = wo * p16 * sh_p * inv_pcie;

        // --- Stable microbatch: backward phase ----------------------------
        let c_bwd = l * layer.bwd_compute
            + ckpt * layer.fwd_compute // Recomputation.
            + embed.map_or(0.0, |e| e.bwd_compute)
            + head.map_or(0.0, |h| h.bwd_compute);
        let role_comm_bwd =
            embed.map_or(0.0, |e| e.tp_comm_bwd) + head.map_or(0.0, |h| h.tp_comm_bwd);
        let nccl_bwd = l * (layer.tp_comm_bwd + z3_ag) + (role_comm_bwd + p2p_one);
        // Gradients stream out every backward when offloaded (CPU
        // accumulation, ZeRO-Offload style).
        let d2h_bwd = go * g16 * sh_g * inv_pcie;
        // Activations stream back in; offloaded weights stream in again.
        let h2d_bwd = (ao * acts_all + wo * p16 * sh_p) * inv_pcie;

        // --- First-microbatch extras ---------------------------------------
        // Decoupled optimizer step (repositioned before the first forward):
        // linear model fitted from two database probes.
        let probe = 64_000_000u64;
        let t1 = self
            .db
            .query(OpQuery::new(OpKind::OptimizerStep, [probe, 0, 0, 0]));
        let t2 = self
            .db
            .query(OpQuery::new(OpKind::OptimizerStep, [2 * probe, 0, 0, 0]));
        let opt_slope = (t2 - t1) / probe as f64;
        let opt_base = (t1 - opt_slope * probe as f64).max(0.0);
        let c_first = params * sh_o * opt_slope + opt_base;

        // Updated-parameter all-gather, needed by ZeRO-1/2 (ZeRO-3
        // re-gathers per layer anyway).
        let (ag_coeff, ag_lat) = linear_collective(|bytes| all_gather_time(bytes, dp, dp_link));
        let param_ag = p16 * ag_coeff + ag_lat;
        let z12 = z1 * (1.0 - z3);
        let nccl_first = ctx.select(ctx.cmp(CmpOp::Gt, z12, zero_c), param_ag, zero_c);

        // Refresh the CPU copy of offloaded weights after the step.
        let d2h_first = wo * p16 * sh_p * inv_pcie;
        // Swap in optimizer states (and offloaded gradients) for the step.
        let h2d_first = (oo * opt32 * sh_o + go * g16 * sh_g) * inv_pcie;

        // --- Last-microbatch extras ----------------------------------------
        // Gradient reduction: all-reduce below ZeRO-2, reduce-scatter at
        // ZeRO-2+. Linear in bytes, symbolic in L.
        let (ar_coeff, ar_lat) = linear_collective(|bytes| all_reduce_time(bytes, dp, dp_link));
        let (rs_coeff, rs_lat) =
            linear_collective(|bytes| mist_hardware::reduce_scatter_time(bytes, dp, dp_link));
        let grad_ar = g16 * ar_coeff + ar_lat;
        let grad_rs = g16 * rs_coeff + rs_lat;
        let nccl_last = ctx.select(z2, grad_rs, grad_ar);
        // Swap optimizer states back out after the (next) step; modelled
        // in the last microbatch so one iteration carries both directions.
        let d2h_last = oo * opt32 * sh_o * inv_pcie;
        let c_last = zero_c;
        let h2d_last = zero_c;

        // Fuse all 22 roots into one program (cross-root CSE: the shared
        // sharding/offload subtrees are compiled once, not per tape).
        let mem_transient_fwd_e = ctx.constant(transient_fwd);
        let program = ctx.compile_program(&[
            ("mem_fwd", mem_fwd),
            ("mem_bwd", mem_bwd),
            ("mem_resident", mem_resident),
            ("mem_act_per_mb", acts_per_mb),
            ("mem_transient_fwd", mem_transient_fwd_e),
            ("mem_transient_bwd", mem_transient_bwd),
            ("fwd_compute", c_fwd),
            ("fwd_nccl", nccl_fwd),
            ("fwd_d2h", d2h_fwd),
            ("fwd_h2d", h2d_fwd),
            ("bwd_compute", c_bwd),
            ("bwd_nccl", nccl_bwd),
            ("bwd_d2h", d2h_bwd),
            ("bwd_h2d", h2d_bwd),
            ("first_compute", c_first),
            ("first_nccl", nccl_first),
            ("first_d2h", d2h_first),
            ("first_h2d", h2d_first),
            ("last_compute", c_last),
            ("last_nccl", nccl_last),
            ("last_d2h", d2h_last),
            ("last_h2d", h2d_last),
        ]);
        debug_assert_eq!(program.num_roots(), stage_roots::COUNT);
        let mem_pair = ctx.compile_program(&[("mem_fwd", mem_fwd), ("mem_bwd", mem_bwd)]);

        // Debug/CI builds statically verify every fused program: units
        // line up and all roots are provably finite and non-negative over
        // the widest knob domain any sweep can bind.
        #[cfg(debug_assertions)]
        for (prog, label) in [(&program, "stage"), (&mem_pair, "stage.mem_pair")] {
            let report = mist_irlint::lint_program(
                prog,
                &stage_unit_registry(),
                &stage_domains(self.model.num_layers),
                label,
            );
            debug_assert!(report.is_clean(), "IR lint errors in `{label}`:\n{report}");
        }

        StageTapes {
            candidate: *cand,
            program,
            mem_pair,
            mem_fwd: ctx.compile(mem_fwd),
            mem_bwd: ctx.compile(mem_bwd),
            mem_resident: ctx.compile(mem_resident),
            mem_act_per_mb: ctx.compile(acts_per_mb),
            mem_transient_fwd: ctx.compile(ctx.constant(transient_fwd)),
            mem_transient_bwd: ctx.compile(mem_transient_bwd),
            fwd: StreamTapes {
                compute: ctx.compile(c_fwd),
                nccl: ctx.compile(nccl_fwd),
                d2h: ctx.compile(d2h_fwd),
                h2d: ctx.compile(h2d_fwd),
            },
            bwd: StreamTapes {
                compute: ctx.compile(c_bwd),
                nccl: ctx.compile(nccl_bwd),
                d2h: ctx.compile(d2h_bwd),
                h2d: ctx.compile(h2d_bwd),
            },
            first_extra: StreamTapes {
                compute: ctx.compile(c_first),
                nccl: ctx.compile(nccl_first),
                d2h: ctx.compile(d2h_first),
                h2d: ctx.compile(h2d_first),
            },
            last_extra: StreamTapes {
                compute: ctx.compile(c_last),
                nccl: ctx.compile(nccl_last),
                d2h: ctx.compile(d2h_last),
                h2d: ctx.compile(h2d_last),
            },
            layer,
            p2p_bytes,
        }
    }
}

/// Fits `time(bytes) ≈ coeff · bytes + lat` from two probes of a
/// collective cost function (they are exactly linear in bytes).
fn linear_collective(f: impl Fn(f64) -> f64) -> (f64, f64) {
    let b1 = 1e6;
    let b2 = 2e6;
    let t1 = f(b1);
    let t2 = f(b2);
    let coeff = (t2 - t1) / (b2 - b1);
    (coeff, (t1 - coeff * b1).max(0.0))
}

impl StageTapes {
    /// Evaluates every root at one configuration through the fused
    /// program (scalar path).
    ///
    /// # Panics
    ///
    /// Panics if evaluation fails (cannot happen for the symbols this
    /// module emits).
    pub fn eval_point(&self, cfg: &StageConfigValues) -> StagePoint {
        let inputs = self
            .program
            .symbols()
            .resolve_scalars(&cfg.bindings())
            .expect("stage symbols");
        let mut out = Vec::with_capacity(stage_roots::COUNT);
        self.program
            .eval_scalar(&inputs, &mut out)
            .expect("stage program");
        let quad = |base: usize| [out[base], out[base + 1], out[base + 2], out[base + 3]];
        StagePoint {
            mem_fwd: out[stage_roots::MEM_FWD],
            mem_bwd: out[stage_roots::MEM_BWD],
            mem_resident: out[stage_roots::MEM_RESIDENT],
            mem_act_per_mb: out[stage_roots::MEM_ACT_PER_MB],
            mem_transient_fwd: out[stage_roots::MEM_TRANSIENT_FWD],
            mem_transient_bwd: out[stage_roots::MEM_TRANSIENT_BWD],
            fwd: quad(stage_roots::FWD),
            bwd: quad(stage_roots::BWD),
            first_extra: quad(stage_roots::FIRST_EXTRA),
            last_extra: quad(stage_roots::LAST_EXTRA),
        }
    }

    /// Evaluates all 22 roots over a batch in one fused pass.
    ///
    /// Output columns land in `ws` at the [`stage_roots`] indices; read
    /// rows back with [`StageTapes::point_at`]. The workspace is reused
    /// across calls, so steady-state evaluation performs no
    /// per-instruction allocation.
    ///
    /// # Errors
    ///
    /// Propagates binding errors from
    /// [`Program::eval_batch`](mist_symbolic::Program::eval_batch).
    pub fn eval_batch_fused(
        &self,
        batch: &BatchBindings,
        ws: &mut EvalWorkspace,
    ) -> Result<(), SymbolicError> {
        self.program.eval_batch(batch, ws)
    }

    /// Assembles row `i` of a fused batch evaluation into a [`StagePoint`].
    ///
    /// # Panics
    ///
    /// Panics if `ws` was not filled by [`StageTapes::eval_batch_fused`]
    /// or `i` is out of range.
    pub fn point_at(&self, ws: &EvalWorkspace, i: usize) -> StagePoint {
        Self::assemble_point(&|root| ws.output(root)[i])
    }

    /// Assembles row `i` of a compiled-backend batch evaluation into a
    /// [`StagePoint`]. The compiled backend is bit-identical to the
    /// interpreter, so the assembled point is byte-for-byte the one
    /// [`StageTapes::point_at`] would produce for the same row.
    ///
    /// # Panics
    ///
    /// Panics if `ws` was not filled by evaluating the fused stage
    /// program's compiled form, or `i` is out of range.
    pub fn point_at_compiled(&self, ws: &CompiledWorkspace, i: usize) -> StagePoint {
        Self::assemble_point(&|root| ws.output(root)[i])
    }

    fn assemble_point(s: &dyn Fn(usize) -> f64) -> StagePoint {
        let quad = |base: usize| [s(base), s(base + 1), s(base + 2), s(base + 3)];
        StagePoint {
            mem_fwd: s(stage_roots::MEM_FWD),
            mem_bwd: s(stage_roots::MEM_BWD),
            mem_resident: s(stage_roots::MEM_RESIDENT),
            mem_act_per_mb: s(stage_roots::MEM_ACT_PER_MB),
            mem_transient_fwd: s(stage_roots::MEM_TRANSIENT_FWD),
            mem_transient_bwd: s(stage_roots::MEM_TRANSIENT_BWD),
            fwd: quad(stage_roots::FWD),
            bwd: quad(stage_roots::BWD),
            first_extra: quad(stage_roots::FIRST_EXTRA),
            last_extra: quad(stage_roots::LAST_EXTRA),
        }
    }

    /// Evaluates the two-root `mem_pair` program and returns the per-row
    /// peak `max(mem_fwd, mem_bwd)` — the Eq. 4 feasibility quantity.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not bind every stage symbol.
    pub fn mem_peak_batch(&self, batch: &BatchBindings, ws: &mut EvalWorkspace) -> Vec<f64> {
        self.mem_pair
            .eval_batch(batch, ws)
            .expect("mem_pair program");
        ws.output(0)
            .iter()
            .zip(ws.output(1))
            .map(|(&f, &b)| f.max(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::{ClusterSpec, GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    fn setup() -> (mist_models::ModelSpec, ClusterSpec) {
        (
            gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash),
            ClusterSpec::for_gpu_count(Platform::GcpL4, 4),
        )
    }

    fn base_cfg() -> StageConfigValues {
        StageConfigValues::plain(16, 1)
    }

    fn tapes(
        model: &mist_models::ModelSpec,
        cluster: &ClusterSpec,
        dp: u32,
        tp: u32,
    ) -> StageTapes {
        let db = OpCostDb::new(GpuSpec::l4());
        let analyzer = StageAnalyzer::new(model, cluster, &db);
        analyzer.analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, dp * tp),
            dp,
            tp,
            micro_batch: 1,
            role: StageRole::Only,
        })
    }

    #[test]
    fn stage_programs_lint_clean_over_widest_domains() {
        let (model, cluster) = setup();
        let db = OpCostDb::new(GpuSpec::l4());
        let analyzer = StageAnalyzer::new(&model, &cluster, &db);
        let registry = stage_unit_registry();
        let domains = stage_domains(model.num_layers);
        for role in [
            StageRole::Only,
            StageRole::First,
            StageRole::Middle,
            StageRole::Last,
        ] {
            let t = analyzer.analyze(&StageCandidate {
                mesh: DeviceMesh::new(1, 4),
                dp: 2,
                tp: 2,
                micro_batch: 2,
                role,
            });
            for (prog, label) in [(&t.program, "stage"), (&t.mem_pair, "mem_pair")] {
                let report = mist_irlint::lint_program(prog, &registry, &domains, label);
                assert_eq!(report.error_count(), 0, "{role:?}/{label}:\n{report}");
                assert_eq!(report.warning_count(), 0, "{role:?}/{label}:\n{report}");
                // Interval analysis must prove every root finite and
                // non-negative over the whole sweep, not just error-free.
                for rb in &report.root_bounds {
                    assert!(rb.lo >= 0.0, "{role:?}/{label} root {}: {rb:?}", rb.label);
                    assert!(
                        rb.hi.is_finite(),
                        "{role:?}/{label} root {}: {rb:?}",
                        rb.label
                    );
                }
            }
        }
    }

    #[test]
    fn role_of_matches_pipeline_shape() {
        assert_eq!(StageRole::of(0, 1), StageRole::Only);
        assert_eq!(StageRole::of(0, 4), StageRole::First);
        assert_eq!(StageRole::of(3, 4), StageRole::Last);
        assert_eq!(StageRole::of(2, 4), StageRole::Middle);
    }

    #[test]
    fn checkpointing_trades_memory_for_compute() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 1, 1);
        let mut cfg = base_cfg();
        let p0 = t.eval_point(&cfg);
        cfg.ckpt = 16;
        let p1 = t.eval_point(&cfg);
        assert!(p1.mem_fwd < p0.mem_fwd, "ckpt must reduce memory");
        assert!(p1.bwd[0] > p0.bwd[0], "ckpt adds recompute to backward");
        assert_eq!(p1.fwd[0], p0.fwd[0], "forward compute unchanged");
    }

    #[test]
    fn zero_levels_progressively_shard_states() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 4, 1);
        let mut cfg = base_cfg();
        let mut prev = f64::INFINITY;
        for z in 0..=3u8 {
            cfg.zero = z;
            let p = t.eval_point(&cfg);
            assert!(p.mem_fwd < prev, "zero={z} must shrink memory");
            prev = p.mem_fwd;
        }
    }

    #[test]
    fn zero3_adds_stable_allgather_traffic() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 4, 1);
        let mut cfg = base_cfg();
        let p0 = t.eval_point(&cfg);
        cfg.zero = 3;
        let p3 = t.eval_point(&cfg);
        assert!(p3.fwd[1] > p0.fwd[1]);
        assert!(p3.bwd[1] > p0.bwd[1]);
    }

    #[test]
    fn offloading_reduces_memory_and_adds_transfers() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 2, 2);
        let mut cfg = base_cfg();
        let p0 = t.eval_point(&cfg);
        cfg.oo = 1.0;
        let p1 = t.eval_point(&cfg);
        assert!(p1.mem_fwd < p0.mem_fwd);
        assert_eq!(p0.first_extra[3], 0.0);
        assert!(
            p1.first_extra[3] > 0.0,
            "optimizer swap-in in first microbatch"
        );
        assert!(
            p1.last_extra[2] > 0.0,
            "optimizer swap-out in last microbatch"
        );

        cfg.oo = 0.0;
        cfg.ao = 0.5;
        let p2 = t.eval_point(&cfg);
        assert!(p2.mem_fwd < p0.mem_fwd);
        assert!(p2.fwd[2] > 0.0, "activation offload streams out in forward");
        assert!(p2.bwd[3] > 0.0, "activations stream back in backward");
    }

    #[test]
    fn weight_offload_streams_twice_per_microbatch() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 1, 4);
        let mut cfg = base_cfg();
        cfg.wo = 1.0;
        let p = t.eval_point(&cfg);
        let params = 16.0 * t.layer.params_per_gpu;
        let expect_min = 2.0 * 2.0 * params / 24e9;
        let total_h2d = p.fwd[3] + p.bwd[3];
        assert!(total_h2d >= expect_min * 0.9, "{total_h2d} vs {expect_min}");
    }

    #[test]
    fn inflight_scales_activation_memory() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 1, 1);
        let mut cfg = base_cfg();
        let p1 = t.eval_point(&cfg);
        cfg.inflight = 4;
        let p4 = t.eval_point(&cfg);
        assert!(p4.mem_fwd > p1.mem_fwd);
        assert!(p4.mem_fwd < 4.0 * p1.mem_fwd);
    }

    #[test]
    fn delta_contains_gradient_reduction_only_with_dp() {
        let (model, cluster) = setup();
        let t1 = tapes(&model, &cluster, 1, 4);
        let t4 = tapes(&model, &cluster, 4, 1);
        let cfg = base_cfg();
        assert_eq!(
            t1.eval_point(&cfg).last_extra[1],
            0.0,
            "dp=1: no grad all-reduce"
        );
        assert!(t4.eval_point(&cfg).last_extra[1] > 0.0);
    }

    #[test]
    fn zero2_reduce_scatter_cheaper_than_allreduce() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 4, 1);
        let mut cfg = base_cfg();
        let ar = t.eval_point(&cfg).last_extra[1];
        cfg.zero = 2;
        let rs = t.eval_point(&cfg).last_extra[1];
        assert!(rs < ar, "reduce-scatter {rs} vs all-reduce {ar}");
    }

    #[test]
    fn batched_and_scalar_evaluation_agree() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 2, 2);
        let mut batch = mist_symbolic::BatchBindings::new(3);
        batch.set_scalar("L", 16.0);
        batch.set_values("ckpt", vec![0.0, 8.0, 16.0]);
        batch.set_scalar("zero", 2.0);
        batch.set_scalar("wo", 0.0);
        batch.set_scalar("go", 0.0);
        batch.set_values("oo", vec![0.0, 0.5, 1.0]);
        batch.set_scalar("ao", 0.25);
        batch.set_scalar("inflight", 2.0);
        let mems = t.mem_fwd.eval_batch(&batch).unwrap();
        let rows = t.bwd.eval_batch(&batch);
        for (i, (&ck, &oo)) in [0.0f64, 8.0, 16.0]
            .iter()
            .zip(&[0.0f64, 0.5, 1.0])
            .enumerate()
        {
            let cfg = StageConfigValues {
                layers: 16,
                ckpt: ck as u32,
                zero: 2,
                wo: 0.0,
                go: 0.0,
                oo,
                ao: 0.25,
                inflight: 2,
            };
            let p = t.eval_point(&cfg);
            assert!((mems[i] - p.mem_fwd).abs() < 1.0, "row {i}");
            for (s, want) in rows[i].iter().enumerate() {
                assert!((want - p.bwd[s]).abs() < 1e-12, "row {i} stream {s}");
            }
        }
    }

    #[test]
    fn last_stage_pays_for_logits() {
        let (model, cluster) = setup();
        let db = OpCostDb::new(GpuSpec::l4());
        let analyzer = StageAnalyzer::new(&model, &cluster, &db);
        let mk = |role| {
            analyzer.analyze(&StageCandidate {
                mesh: DeviceMesh::new(1, 2),
                dp: 1,
                tp: 2,
                micro_batch: 1,
                role,
            })
        };
        let mid = mk(StageRole::Middle);
        let last = mk(StageRole::Last);
        let cfg = base_cfg();
        assert!(last.eval_point(&cfg).mem_fwd > mid.eval_point(&cfg).mem_fwd);
        assert!(last.eval_point(&cfg).fwd[0] > mid.eval_point(&cfg).fwd[0]);
    }

    #[test]
    fn interference_tuple_reorders_streams() {
        let t = StagePoint::interference_tuple([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t, [1.0, 2.0, 4.0, 3.0]);
    }

    #[test]
    fn fused_program_matches_individual_tapes() {
        let (model, cluster) = setup();
        let t = tapes(&model, &cluster, 2, 2);
        assert_eq!(t.program.num_roots(), stage_roots::COUNT);

        let mut batch = mist_symbolic::BatchBindings::new(4);
        batch.set_values("L", vec![4.0, 8.0, 16.0, 32.0]);
        batch.set_values("ckpt", vec![0.0, 4.0, 8.0, 32.0]);
        batch.set_values("zero", vec![0.0, 1.0, 2.0, 3.0]);
        batch.set_scalar("wo", 0.5);
        batch.set_scalar("go", 0.25);
        batch.set_values("oo", vec![0.0, 0.5, 1.0, 0.75]);
        batch.set_scalar("ao", 0.5);
        batch.set_scalar("inflight", 2.0);

        let mut ws = EvalWorkspace::new();
        t.eval_batch_fused(&batch, &mut ws).unwrap();

        let separate: [(&Tape, usize); 6] = [
            (&t.mem_fwd, stage_roots::MEM_FWD),
            (&t.mem_bwd, stage_roots::MEM_BWD),
            (&t.mem_resident, stage_roots::MEM_RESIDENT),
            (&t.mem_act_per_mb, stage_roots::MEM_ACT_PER_MB),
            (&t.mem_transient_fwd, stage_roots::MEM_TRANSIENT_FWD),
            (&t.mem_transient_bwd, stage_roots::MEM_TRANSIENT_BWD),
        ];
        for (tape, root) in separate {
            assert_eq!(ws.output(root), &tape.eval_batch(&batch).unwrap()[..]);
        }
        for (streams, base) in [
            (&t.fwd, stage_roots::FWD),
            (&t.bwd, stage_roots::BWD),
            (&t.first_extra, stage_roots::FIRST_EXTRA),
            (&t.last_extra, stage_roots::LAST_EXTRA),
        ] {
            let rows = streams.eval_batch(&batch);
            for (i, row) in rows.iter().enumerate() {
                for (s, want) in row.iter().enumerate() {
                    assert_eq!(ws.output(base + s)[i], *want, "root {base}+{s} row {i}");
                }
            }
        }

        // point_at reads the same rows back, and the scalar path agrees.
        let p1 = t.point_at(&ws, 1);
        let cfg = StageConfigValues {
            layers: 8,
            ckpt: 4,
            zero: 1,
            wo: 0.5,
            go: 0.25,
            oo: 0.5,
            ao: 0.5,
            inflight: 2,
        };
        let ps = t.eval_point(&cfg);
        assert_eq!(p1, ps);

        // mem_pair agrees with the full program's memory roots.
        let peaks = t.mem_peak_batch(&batch, &mut EvalWorkspace::new());
        t.eval_batch_fused(&batch, &mut ws).unwrap();
        for (i, peak) in peaks.iter().enumerate() {
            let want = ws.output(stage_roots::MEM_FWD)[i].max(ws.output(stage_roots::MEM_BWD)[i]);
            assert_eq!(*peak, want, "row {i}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mist_hardware::{ClusterSpec, GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};
    use proptest::prelude::*;

    fn tapes() -> StageTapes {
        let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
        let db = OpCostDb::new(GpuSpec::l4());
        StageAnalyzer::new(&model, &cluster, &db).analyze(&StageCandidate {
            mesh: DeviceMesh::new(1, 4),
            dp: 2,
            tp: 2,
            micro_batch: 2,
            role: StageRole::Only,
        })
    }

    fn arb_cfg() -> impl Strategy<Value = StageConfigValues> {
        (
            1u32..=32,
            0u32..=32,
            0u8..=3,
            prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
            prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
            prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
            prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
            1u32..=8,
        )
            .prop_map(
                |(layers, ckpt, zero, wo, go, oo, ao, inflight)| StageConfigValues {
                    layers,
                    ckpt: ckpt.min(layers),
                    zero,
                    wo,
                    go,
                    oo,
                    ao,
                    inflight,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All evaluated quantities are finite and non-negative for any
        /// valid configuration.
        #[test]
        fn points_are_finite_and_nonnegative(cfg in arb_cfg()) {
            let t = tapes();
            let p = t.eval_point(&cfg);
            for v in [p.mem_fwd, p.mem_bwd, p.mem_resident, p.mem_act_per_mb] {
                prop_assert!(v.is_finite() && v >= 0.0, "memory {v}");
            }
            for arr in [p.fwd, p.bwd, p.first_extra, p.last_extra] {
                for v in arr {
                    prop_assert!(v.is_finite() && v >= 0.0, "stream {v}");
                }
            }
        }

        /// Memory decomposition is consistent with the peak expressions.
        #[test]
        fn memory_decomposition_adds_up(cfg in arb_cfg()) {
            let t = tapes();
            let p = t.eval_point(&cfg);
            let fwd = p.mem_resident + cfg.inflight as f64 * p.mem_act_per_mb
                + p.mem_transient_fwd;
            let bwd = p.mem_resident + cfg.inflight as f64 * p.mem_act_per_mb
                + p.mem_transient_bwd;
            prop_assert!((fwd - p.mem_fwd).abs() < 1.0, "{fwd} vs {}", p.mem_fwd);
            prop_assert!((bwd - p.mem_bwd).abs() < 1.0, "{bwd} vs {}", p.mem_bwd);
        }

        /// More aggressive memory optimization never increases memory.
        #[test]
        fn knob_monotonicity(cfg in arb_cfg()) {
            let t = tapes();
            let base = t.eval_point(&cfg).mem_fwd;
            // Raise each memory knob and check memory does not grow.
            let mut c = cfg; c.ckpt = cfg.layers;
            prop_assert!(t.eval_point(&c).mem_fwd <= base + 1.0);
            let mut c = cfg; c.zero = 3;
            prop_assert!(t.eval_point(&c).mem_fwd <= base + 1.0);
            let mut c = cfg; c.oo = 1.0;
            prop_assert!(t.eval_point(&c).mem_fwd <= base + 1.0);
            // Activation offload only pays once the removed stash exceeds
            // its double buffer (two layers' activations): tiny stages
            // with one in-flight microbatch can legitimately grow.
            if cfg.inflight as f64 * (cfg.layers - cfg.ckpt) as f64 >= 3.0 {
                let mut c = cfg; c.ao = 1.0;
                prop_assert!(t.eval_point(&c).mem_fwd <= base + 1.0);
            }
        }

        /// Compute time is layer-linear: doubling layers doubles the
        /// layer-proportional part of forward compute.
        #[test]
        fn compute_is_layer_linear(l in 1u32..=16, inflight in 1u32..=4) {
            let t = tapes();
            let mk = |layers: u32| StageConfigValues::plain(layers, inflight);
            let c1 = t.eval_point(&mk(l)).fwd[0];
            let c2 = t.eval_point(&mk(2 * l)).fwd[0];
            // Subtract the role-constant part (embedding/head) by
            // extrapolation: c2 - c1 == l * per_layer.
            let per_layer = (c2 - c1) / l as f64;
            let c3 = t.eval_point(&mk(3 * l)).fwd[0];
            prop_assert!(((c3 - c2) / l as f64 - per_layer).abs() < 1e-9);
        }
    }
}
