//! Liveness analysis over traced layers.
//!
//! The paper tracks live tensors on the symbolic computational graph to
//! find the peak memory at any execution point, running an intra-layer
//! pass (this module) and an inter-layer pass (`analyze`) that combines
//! per-layer statistics into stage-wise expressions (§5.2.1).
//!
//! The intra-layer pass walks the op chain with a producer/consumer
//! liveness window: an op's output stays live until its consumer finishes,
//! and the residual stream stays live across the whole layer. The backward
//! pass is analyzed on the *fake backward graph* — ops in reverse order,
//! with gradient tensors mirroring the forward outputs.

use mist_hardware::{all_reduce_time, LinkSpec, OpCostDb};
use serde::{Deserialize, Serialize};

use crate::op::TracedOpKind;
use crate::trace::TracedLayer;

/// Aggregated per-layer statistics consumed by the stage analyzer.
///
/// All byte quantities are per GPU (TP-sharded); all times are seconds for
/// one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Forward compute time (sum of kernel times).
    pub fwd_compute: f64,
    /// Backward compute time (kernels × their backward factors).
    pub bwd_compute: f64,
    /// TP collective time in the forward pass.
    pub tp_comm_fwd: f64,
    /// TP collective time in the backward pass.
    pub tp_comm_bwd: f64,
    /// Bytes stashed for backward when the layer is not checkpointed.
    pub saved_act_bytes: f64,
    /// Bytes kept by a checkpointed layer (its input boundary).
    pub boundary_bytes: f64,
    /// Transient liveness high-water mark inside the forward pass
    /// (working tensors, not the stash).
    pub transient_fwd_bytes: f64,
    /// Transient high-water mark inside the backward pass (gradient
    /// working set mirrors forward outputs).
    pub transient_bwd_bytes: f64,
    /// Parameter count per GPU.
    pub params_per_gpu: f64,
}

/// Runs intra-layer liveness + cost aggregation for one traced layer.
///
/// `tp_link` is the link the layer's TP collectives run over; `tp` their
/// group size.
pub fn profile_layer(layer: &TracedLayer, db: &OpCostDb, tp_link: LinkSpec) -> LayerProfile {
    let tp = layer.tp as u32;
    let mut fwd_compute = 0.0;
    let mut bwd_compute = 0.0;
    let mut tp_comm_fwd = 0.0;
    let mut tp_comm_bwd = 0.0;
    let mut saved = 0.0;

    for op in &layer.ops {
        match &op.kind {
            TracedOpKind::Compute { query, bwd_factor } => {
                let t = db.query(*query);
                fwd_compute += t;
                bwd_compute += t * bwd_factor;
            }
            TracedOpKind::TpComm {
                fwd_bytes,
                bwd_bytes,
            } => {
                tp_comm_fwd += all_reduce_time(*fwd_bytes, tp, tp_link);
                tp_comm_bwd += all_reduce_time(*bwd_bytes, tp, tp_link);
            }
            TracedOpKind::Free => {}
        }
        saved += op.saved_bytes;
    }

    // Forward liveness window: the residual stream (layer input) is live
    // throughout; at any op, its output and its predecessor's output are
    // both live (chain consumption).
    let residual = layer.boundary_bytes;
    let mut transient_fwd: f64 = 0.0;
    let mut prev_out = 0.0;
    for op in &layer.ops {
        let here = residual + prev_out + op.out_bytes;
        transient_fwd = transient_fwd.max(here);
        if op.out_bytes > 0.0 {
            prev_out = op.out_bytes;
        }
    }

    // Fake backward graph: reverse walk; at each op, the incoming gradient
    // (same size as the op output) and the produced input-gradient (same
    // size as predecessor output) are live, plus the gradient of the
    // residual stream.
    let mut transient_bwd: f64 = 0.0;
    let mut grad_in = 0.0;
    for op in layer.ops.iter().rev() {
        let grad_out = op.out_bytes;
        let here = residual + grad_in + grad_out;
        transient_bwd = transient_bwd.max(here);
        if grad_out > 0.0 {
            grad_in = grad_out;
        }
    }

    LayerProfile {
        fwd_compute,
        bwd_compute,
        tp_comm_fwd,
        tp_comm_bwd,
        saved_act_bytes: saved,
        boundary_bytes: layer.boundary_bytes,
        transient_fwd_bytes: transient_fwd,
        transient_bwd_bytes: transient_bwd,
        params_per_gpu: layer.params_per_gpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{trace_head, trace_layer};
    use mist_hardware::{GpuSpec, OpCostDb};
    use mist_models::{gpt3, AttentionImpl, ModelSize, ModelStats};

    fn link() -> LinkSpec {
        LinkSpec::new(20e9, 8e-6)
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let spec = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let db = OpCostDb::new(GpuSpec::l4());
        let p = profile_layer(&trace_layer(&spec, 2, 1), &db, link());
        assert!(p.bwd_compute > 1.5 * p.fwd_compute);
        assert!(p.bwd_compute < 3.0 * p.fwd_compute);
    }

    #[test]
    fn tp_halves_compute_but_adds_comm() {
        let spec = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
        let db = OpCostDb::new(GpuSpec::l4());
        let p1 = profile_layer(&trace_layer(&spec, 2, 1), &db, link());
        let p2 = profile_layer(&trace_layer(&spec, 2, 2), &db, link());
        assert!(p2.fwd_compute < p1.fwd_compute);
        assert_eq!(p1.tp_comm_fwd, 0.0);
        assert!(p2.tp_comm_fwd > 0.0);
    }

    #[test]
    fn traced_saved_bytes_agree_with_closed_form() {
        // The tracer and the ModelStats reference formula must agree to
        // within 35% (they make slightly different double-count choices).
        for size in [ModelSize::B1_3, ModelSize::B6_7] {
            for attn in [AttentionImpl::Flash, AttentionImpl::Standard] {
                let spec = gpt3(size, 2048, attn);
                let db = OpCostDb::new(GpuSpec::l4());
                for tp in [1u64, 2, 4] {
                    let p = profile_layer(&trace_layer(&spec, 2, tp), &db, link());
                    let want = ModelStats::new(&spec).layer_saved_activation_bytes(2, tp);
                    let rel = (p.saved_act_bytes - want).abs() / want;
                    assert!(
                        rel < 0.35,
                        "{} tp={tp} {:?}: traced {:.3e} vs closed-form {want:.3e}",
                        spec.name,
                        attn,
                        p.saved_act_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn transients_are_bounded_and_positive() {
        let spec = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let db = OpCostDb::new(GpuSpec::l4());
        let p = profile_layer(&trace_layer(&spec, 2, 1), &db, link());
        assert!(p.transient_fwd_bytes > p.boundary_bytes);
        assert!(p.transient_fwd_bytes < p.saved_act_bytes);
        assert!(p.transient_bwd_bytes > 0.0);
    }

    #[test]
    fn head_transient_includes_logits() {
        let spec = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let db = OpCostDb::new(GpuSpec::l4());
        let p = profile_layer(&trace_head(&spec, 2, 1), &db, link());
        // Logits: 2·2048·50304·2 bytes ≈ 0.4 GiB.
        assert!(
            p.transient_fwd_bytes > 0.3e9,
            "{:.3e}",
            p.transient_fwd_bytes
        );
    }
}
