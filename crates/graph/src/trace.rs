//! Shape-resolving tracer: model structure → traced op graph.
//!
//! This is the substitute for the paper's symbolic `torch.fx` tracing with
//! fake tensors (§5.2.1): the model definition is walked once per concrete
//! `(micro-batch, TP)` pair and every kernel's shapes, output bytes and
//! activation stash are materialized. Custom kernels (FlashAttention) map
//! to their own cost-database entries exactly as the paper registers them.

use mist_hardware::{OpKind, OpQuery};
use mist_models::{AttentionImpl, LayerOpKind, ModelSpec, Shard};
use serde::{Deserialize, Serialize};

use crate::op::{TracedOp, TracedOpKind};

/// A traced transformer layer (or embedding/head block) with concrete
/// shapes for one `(micro-batch, TP)` choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedLayer {
    /// Ops in execution order.
    pub ops: Vec<TracedOp>,
    /// Parameter *count* held per GPU (already TP-sharded).
    pub params_per_gpu: f64,
    /// Micro-batch size the trace was resolved for.
    pub micro_batch: u64,
    /// TP degree the trace was resolved for.
    pub tp: u64,
    /// Bytes of the layer's input boundary activation (what a
    /// checkpointed layer keeps), per GPU.
    pub boundary_bytes: f64,
}

const FP16: f64 = 2.0;

/// Traces one transformer layer of `spec` for micro-batch `b` and tensor
/// parallelism `tp`.
///
/// # Panics
///
/// Panics if `tp` does not divide the head count / hidden size, or if
/// `b == 0` — the tuner only emits valid candidates.
pub fn trace_layer(spec: &ModelSpec, b: u64, tp: u64) -> TracedLayer {
    assert!(b >= 1, "micro-batch must be positive");
    assert!(
        spec.heads.is_multiple_of(tp) && spec.hidden.is_multiple_of(tp),
        "tp={tp} must divide heads={} and hidden={}",
        spec.heads,
        spec.hidden
    );
    let s = spec.seq_len;
    let h = spec.hidden;
    let heads = spec.heads;
    let tokens = b * s;
    let bsh = (tokens * h) as f64 * FP16;

    let mut ops: Vec<TracedOp> = Vec::new();
    for op in spec.layer_ops() {
        let traced = match op.kind {
            LayerOpKind::Linear {
                in_dim,
                out_dim,
                shard,
            } => {
                let (in_local, out_local) = match shard {
                    Shard::Column => (in_dim, out_dim / tp),
                    Shard::Row => (in_dim / tp, out_dim),
                    Shard::Replicated => (in_dim, out_dim),
                };
                TracedOp {
                    name: op.name.to_owned(),
                    kind: TracedOpKind::Compute {
                        query: OpQuery::new(OpKind::MatMul, [1, tokens, out_local, in_local]),
                        bwd_factor: 2.0,
                    },
                    out_bytes: (tokens * out_local) as f64 * FP16,
                    // The GEMM input is stashed for the weight gradient.
                    saved_bytes: (tokens * in_local) as f64 * FP16,
                }
            }
            LayerOpKind::Attention => {
                let h_local = h / tp;
                let heads_local = heads / tp;
                let (kind, bwd_factor, extra_saved) = match spec.attention {
                    AttentionImpl::Flash => (
                        OpKind::FlashAttn,
                        2.5,
                        // Softmax log-sum-exp statistics (fp32).
                        4.0 * (b * heads_local * s) as f64,
                    ),
                    AttentionImpl::Standard => (
                        OpKind::StdAttn,
                        2.0,
                        // Softmax probabilities, b·heads·s² in fp16.
                        (b * heads_local * s * s) as f64 * FP16,
                    ),
                };
                TracedOp {
                    name: op.name.to_owned(),
                    kind: TracedOpKind::Compute {
                        query: OpQuery::new(kind, [b, s, h_local, heads_local]),
                        bwd_factor,
                    },
                    out_bytes: (tokens * h_local) as f64 * FP16,
                    // Q, K, V inputs plus the variant-specific stash.
                    saved_bytes: 3.0 * (tokens * h_local) as f64 * FP16 + extra_saved,
                }
            }
            LayerOpKind::Norm => {
                let kind = match spec.family {
                    mist_models::Family::Gpt3 => OpKind::LayerNorm,
                    _ => OpKind::RmsNorm,
                };
                TracedOp {
                    name: op.name.to_owned(),
                    kind: TracedOpKind::Compute {
                        query: OpQuery::new(kind, [b, s, h, 0]),
                        bwd_factor: 2.0,
                    },
                    out_bytes: bsh,
                    saved_bytes: bsh, // Norm input (replicated across TP).
                }
            }
            LayerOpKind::Elementwise {
                elems_per_token,
                saves_input,
            } => {
                let local = elems_per_token / tp;
                let bytes = (tokens * local) as f64 * FP16;
                TracedOp {
                    name: op.name.to_owned(),
                    kind: TracedOpKind::Compute {
                        query: OpQuery::new(OpKind::Elementwise, [(2.0 * bytes) as u64, 0, 0, 0]),
                        bwd_factor: 1.0,
                    },
                    out_bytes: bytes / 2.0
                        * if elems_per_token >= spec.ffn_hidden {
                            1.0
                        } else {
                            2.0
                        },
                    saved_bytes: if saves_input { bytes } else { 0.0 },
                }
            }
            LayerOpKind::Residual => TracedOp {
                name: op.name.to_owned(),
                kind: TracedOpKind::Free,
                out_bytes: bsh,
                saved_bytes: 0.0,
            },
            LayerOpKind::TpAllReduce => TracedOp {
                name: op.name.to_owned(),
                kind: TracedOpKind::TpComm {
                    fwd_bytes: bsh,
                    bwd_bytes: bsh,
                },
                out_bytes: 0.0,
                saved_bytes: 0.0,
            },
        };
        ops.push(traced);
    }

    TracedLayer {
        ops,
        params_per_gpu: spec.params_per_layer() as f64 / tp as f64,
        micro_batch: b,
        tp,
        boundary_bytes: bsh,
    }
}

/// Traces the input-embedding block (first pipeline stage only).
pub fn trace_embedding(spec: &ModelSpec, b: u64, tp: u64) -> TracedLayer {
    let tokens = b * spec.seq_len;
    let bsh = (tokens * spec.hidden) as f64 * FP16;
    let ops = vec![TracedOp {
        name: "embed.lookup".to_owned(),
        kind: TracedOpKind::Compute {
            query: OpQuery::new(
                OpKind::Embedding,
                [b, spec.seq_len, spec.hidden, spec.vocab],
            ),
            bwd_factor: 1.0,
        },
        out_bytes: bsh,
        saved_bytes: 0.0, // Indices are negligible.
    }];
    TracedLayer {
        ops,
        params_per_gpu: spec.embedding_params() as f64 / tp as f64,
        micro_batch: b,
        tp,
        boundary_bytes: bsh,
    }
}

/// Traces the LM-head block: final norm, vocab-parallel projection and
/// fused cross-entropy (last pipeline stage only).
pub fn trace_head(spec: &ModelSpec, b: u64, tp: u64) -> TracedLayer {
    let s = spec.seq_len;
    let h = spec.hidden;
    let tokens = b * s;
    let bsh = (tokens * h) as f64 * FP16;
    let vocab_local = spec.vocab.div_ceil(tp);
    let norm_kind = match spec.family {
        mist_models::Family::Gpt3 => OpKind::LayerNorm,
        _ => OpKind::RmsNorm,
    };
    let ops = vec![
        TracedOp {
            name: "head.final_norm".to_owned(),
            kind: TracedOpKind::Compute {
                query: OpQuery::new(norm_kind, [b, s, h, 0]),
                bwd_factor: 2.0,
            },
            out_bytes: bsh,
            saved_bytes: bsh,
        },
        TracedOp {
            name: "head.lm_proj".to_owned(),
            kind: TracedOpKind::Compute {
                query: OpQuery::new(OpKind::MatMul, [1, tokens, vocab_local, h]),
                bwd_factor: 2.0,
            },
            // Logits are the transient memory hot spot of the last stage.
            out_bytes: (tokens * vocab_local) as f64 * FP16,
            saved_bytes: bsh,
        },
        TracedOp {
            name: "head.cross_entropy".to_owned(),
            kind: TracedOpKind::Compute {
                query: OpQuery::new(OpKind::CrossEntropy, [b, s, vocab_local, 0]),
                bwd_factor: 1.0,
            },
            out_bytes: 4.0 * tokens as f64,
            saved_bytes: 4.0 * tokens as f64,
        },
        // Vocab-parallel CE exchanges per-token partial max/sum.
        TracedOp {
            name: "head.ce_allreduce".to_owned(),
            kind: TracedOpKind::TpComm {
                fwd_bytes: 8.0 * tokens as f64,
                bwd_bytes: 0.0,
            },
            out_bytes: 0.0,
            saved_bytes: 0.0,
        },
    ];
    TracedLayer {
        ops,
        // Head shares (ties) the embedding weight; the memory lives on the
        // first stage, so the head holds no extra parameters here.
        params_per_gpu: (spec.vocab * h) as f64 / tp as f64,
        micro_batch: b,
        tp,
        boundary_bytes: bsh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_models::{gpt3, llama, AttentionImpl, ModelSize};

    #[test]
    fn trace_shapes_shard_with_tp() {
        let spec = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
        let t1 = trace_layer(&spec, 2, 1);
        let t4 = trace_layer(&spec, 2, 4);
        assert_eq!(t1.params_per_gpu, 4.0 * t4.params_per_gpu);
        // QKV GEMM output dims shrink by tp.
        let qkv = |t: &TracedLayer| {
            t.ops
                .iter()
                .find(|o| o.name == "attn.qkv_proj")
                .unwrap()
                .out_bytes
        };
        assert_eq!(qkv(&t1), 4.0 * qkv(&t4));
    }

    #[test]
    fn std_attention_stashes_s_squared() {
        let mut spec = gpt3(ModelSize::B2_6, 4096, AttentionImpl::Standard);
        let std_saved: f64 = trace_layer(&spec, 1, 1)
            .ops
            .iter()
            .map(|o| o.saved_bytes)
            .sum();
        spec.attention = AttentionImpl::Flash;
        let flash_saved: f64 = trace_layer(&spec, 1, 1)
            .ops
            .iter()
            .map(|o| o.saved_bytes)
            .sum();
        assert!(
            std_saved > 3.0 * flash_saved,
            "{std_saved:.3e} vs {flash_saved:.3e}"
        );
    }

    #[test]
    fn llama_trace_contains_gated_mlp() {
        let spec = llama(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let t = trace_layer(&spec, 2, 2);
        assert!(t.ops.iter().any(|o| o.name == "mlp.gate_proj"));
        assert!(t.ops.iter().any(|o| o.name == "mlp.swiglu"));
    }

    #[test]
    fn head_logits_dominate_transients() {
        let spec = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let head = trace_head(&spec, 2, 1);
        let logits = head.ops.iter().find(|o| o.name == "head.lm_proj").unwrap();
        let max_other = head
            .ops
            .iter()
            .filter(|o| o.name != "head.lm_proj")
            .map(|o| o.out_bytes)
            .fold(0.0, f64::max);
        assert!(logits.out_bytes > 10.0 * max_other);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_tp_rejected() {
        let spec = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        trace_layer(&spec, 1, 3);
    }

    #[test]
    fn embedding_block_has_params_but_no_stash() {
        let spec = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let e = trace_embedding(&spec, 2, 2);
        assert!(e.params_per_gpu > 0.0);
        let saved: f64 = e.ops.iter().map(|o| o.saved_bytes).sum();
        assert_eq!(saved, 0.0);
    }
}
