//! Traced operator representation.

use mist_hardware::OpQuery;
use serde::{Deserialize, Serialize};

/// What a traced op does, from the analyzer's point of view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TracedOpKind {
    /// A GPU kernel: costed via the operator database.
    Compute {
        /// Cost-database query with concrete shapes.
        query: OpQuery,
        /// Backward-pass cost as a multiple of the forward cost (dgrad +
        /// wgrad for GEMMs ≈ 2×; FlashAttention backward ≈ 2.5×).
        bwd_factor: f64,
    },
    /// A GPU↔GPU collective on the TP group (activations all-reduce).
    TpComm {
        /// Bytes moved in the forward direction.
        fwd_bytes: f64,
        /// Bytes moved in the backward direction.
        bwd_bytes: f64,
    },
    /// A no-kernel op (residual add handled in-place by fusion).
    Free,
}

/// One node of a traced layer graph.
///
/// `out_bytes` is the op's output tensor (live until its last consumer in
/// the forward pass); `saved_bytes` is what must survive until the backward
/// pass (activation stash). Both are per-GPU, already TP-sharded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedOp {
    /// Qualified name, e.g. `"attn.qkv_proj"`.
    pub name: String,
    /// Kind and cost info.
    pub kind: TracedOpKind,
    /// Output tensor bytes (transient, forward pass).
    pub out_bytes: f64,
    /// Bytes stashed for the backward pass.
    pub saved_bytes: f64,
}

impl TracedOp {
    /// True if this op launches a compute kernel.
    pub fn is_compute(&self) -> bool {
        matches!(self.kind, TracedOpKind::Compute { .. })
    }
}
