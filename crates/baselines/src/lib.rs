//! Baseline distributed-training systems as restricted search spaces.
//!
//! The paper compares Mist against Megatron-LM, DeepSpeed, Aceso and Alpa
//! (§6.1). All of them optimize the same physical problem with (a) a
//! smaller optimization space and (b) a less accurate predictor; this
//! crate pins down those restrictions (see `SearchSpace` presets in
//! `mist-tuner`) and provides a uniform driver so experiment harnesses
//! can sweep every system with one call.
//!
//! The paper's methodology for the *manual* systems (Megatron-LM,
//! DeepSpeed) is a grid search over their configuration space, keeping
//! the best measured result; for the *automatic* systems (Aceso, Alpa)
//! the system's own — flawed — predictor picks the plan, which is then
//! measured. The same split is reproduced here: every baseline's plan
//! selection runs through `mist-tuner` with the preset's awareness flags,
//! and the chosen plan is executed on the `mist-sim` cluster by the
//! caller.

use mist_hardware::{ClusterSpec, OpCostDb};
use mist_interference::InterferenceModel;
use mist_models::ModelSpec;
use mist_tuner::{SearchSpace, TuneOutcome, Tuner};
use serde::{Deserialize, Serialize};

/// The baseline systems of the evaluation (§6.1), plus the
/// uniform-heuristic strawman of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// Megatron-LM: manual, parallelism + full recompute + distributed
    /// optimizer; grid-searched.
    MegatronLM,
    /// DeepSpeed: manual, adds ZeRO-2/3; grid-searched.
    DeepSpeed,
    /// Aceso: automatic, per-stage recompute tuning, no sharded DP /
    /// offloading, overlap- and imbalance-unaware predictor.
    Aceso,
    /// Alpa: automatic parallelism with full recompute.
    Alpa,
    /// Yuan et al.'s uniform-stage heuristic (§3.3): Mist's space forced
    /// uniform across stages.
    UniformHeuristic,
}

impl Baseline {
    /// All baselines in presentation order.
    pub fn all() -> [Baseline; 5] {
        [
            Baseline::MegatronLM,
            Baseline::DeepSpeed,
            Baseline::Aceso,
            Baseline::Alpa,
            Baseline::UniformHeuristic,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::MegatronLM => "Megatron-LM",
            Baseline::DeepSpeed => "DeepSpeed",
            Baseline::Aceso => "Aceso",
            Baseline::Alpa => "Alpa",
            Baseline::UniformHeuristic => "Uniform heuristic",
        }
    }

    /// The search space + predictor restrictions of this system.
    pub fn space(&self) -> SearchSpace {
        match self {
            Baseline::MegatronLM => SearchSpace::megatron(),
            Baseline::DeepSpeed => SearchSpace::deepspeed(),
            Baseline::Aceso => SearchSpace::aceso(),
            Baseline::Alpa => SearchSpace::alpa(),
            Baseline::UniformHeuristic => SearchSpace {
                name: "uniform-heuristic".into(),
                uniform_stages: true,
                ..SearchSpace::mist()
            },
        }
    }

    /// Tunes this baseline's best plan for a workload.
    ///
    /// Returns `None` when the baseline's space has no feasible
    /// configuration (e.g. Alpa on memory-tight L4 workloads, §6.1).
    pub fn tune(
        &self,
        model: &ModelSpec,
        cluster: &ClusterSpec,
        db: &OpCostDb,
        interference: &InterferenceModel,
        global_batch: u64,
    ) -> Option<TuneOutcome> {
        let space = self.space();
        Tuner::new(model, cluster, db, &space, interference).tune(global_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_hardware::{GpuSpec, Platform};
    use mist_models::{gpt3, AttentionImpl, ModelSize};

    #[test]
    fn names_and_spaces_are_consistent() {
        for b in Baseline::all() {
            assert!(!b.name().is_empty());
            let s = b.space();
            match b {
                Baseline::MegatronLM | Baseline::DeepSpeed => assert!(s.uniform_stages),
                Baseline::Aceso => {
                    assert!(!s.overlap_aware);
                    assert!(!s.imbalance_aware);
                }
                Baseline::Alpa => assert_eq!(s.ckpt, mist_tuner::CkptMode::Full),
                Baseline::UniformHeuristic => {
                    assert!(s.uniform_stages);
                    assert!(s.imbalance_aware);
                }
            }
        }
    }

    #[test]
    fn baselines_tune_small_workload() {
        let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
        let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 2);
        let db = OpCostDb::new(GpuSpec::l4());
        let intf = InterferenceModel::pcie_defaults();
        for b in [Baseline::MegatronLM, Baseline::Aceso] {
            let out = b.tune(&model, &cluster, &db, &intf, 8);
            assert!(out.is_some(), "{} found no plan", b.name());
            assert_eq!(out.unwrap().plan.validate(), Ok(()));
        }
    }
}
