//! Per-request quality-of-service profiles.
//!
//! `exhaustive` runs today's full search. `interactive` bounds work
//! *deterministically* — a restricted sweep grid plus a cap on the
//! number of `(G, S)` outer candidates — rather than by wall-clock, so
//! an interactive answer is byte-reproducible across machines, thread
//! counts and load. The restricted space carries a distinct name and
//! content, so interactive and exhaustive results never share a cache
//! fingerprint.

use mist_tuner::SearchSpace;

/// Deterministic outer-candidate cap for [`Qos::Interactive`] queries.
pub const INTERACTIVE_MAX_OUTER: u32 = 12;

/// Quality-of-service profile of one planner query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qos {
    /// Restricted sweep grid + a deterministic outer-candidate budget.
    Interactive,
    /// The full search (default).
    Exhaustive,
}

impl Qos {
    /// Parses a profile name.
    pub fn parse(name: &str) -> Result<Qos, String> {
        match name.to_ascii_lowercase().as_str() {
            "interactive" => Ok(Qos::Interactive),
            "exhaustive" => Ok(Qos::Exhaustive),
            other => Err(format!("unknown qos `{other}` (interactive|exhaustive)")),
        }
    }

    /// The profile's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Qos::Interactive => "interactive",
            Qos::Exhaustive => "exhaustive",
        }
    }

    /// Applies the profile's search-space restriction.
    pub fn restrict(&self, space: &SearchSpace) -> SearchSpace {
        match self {
            Qos::Exhaustive => space.clone(),
            Qos::Interactive => {
                let mut restricted = space.clone();
                restricted.name = format!("{}@interactive", space.name);
                // Keep only the coarsest offload ratio (0.0 stays
                // implied), halve frontier sampling, and tighten the
                // per-stage layer window.
                if restricted.offload_grid.len() > 1 {
                    restricted.offload_grid = vec![*restricted.offload_grid.last().unwrap()];
                }
                restricted.pareto_samples = restricted.pareto_samples.min(4);
                restricted.layer_window = restricted.layer_window.min(4);
                restricted
            }
        }
    }

    /// The profile's outer-candidate cap for the tuning driver.
    pub fn max_outer_candidates(&self) -> u32 {
        match self {
            Qos::Interactive => INTERACTIVE_MAX_OUTER,
            Qos::Exhaustive => u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for qos in [Qos::Interactive, Qos::Exhaustive] {
            assert_eq!(Qos::parse(qos.name()).unwrap(), qos);
        }
        assert!(Qos::parse("bogus").is_err());
    }

    #[test]
    fn interactive_restricts_the_space() {
        let full = SearchSpace::mist();
        let restricted = Qos::Interactive.restrict(&full);
        assert_ne!(restricted.name, full.name);
        assert_eq!(restricted.offload_grid, vec![1.0]);
        assert!(restricted.pareto_samples <= full.pareto_samples);
        assert!(restricted.layer_window <= full.layer_window);
        // Exhaustive is the identity.
        assert_eq!(Qos::Exhaustive.restrict(&full), full);
    }
}
