//! The line-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. A request either carries a `cmd` field
//! (`ping`, `stats`, `shutdown`) or is a plan query (equivalently
//! `"cmd": "plan"`). Responses always carry `"ok"`; plan responses put
//! the deterministic payload under `"result"` and every run-variable
//! field — timings, work counters, cache statistics, telemetry — under
//! `"work"`, which golden comparisons strip.

use serde::Value;

use crate::qos::Qos;

/// Default calibration seed (matches the CLI's default).
pub const DEFAULT_SEED: u64 = 0xAB5EED;

/// Default gradient-accumulation cap (matches `MistSession`).
pub const DEFAULT_MAX_GRAD_ACCUM: u32 = 256;

/// Non-query protocol commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Cache/counter statistics.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A plan query.
    Plan(PlanRequest),
    /// A control command.
    Control(Command),
}

/// A plan query: what to tune, where, and under which profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Model preset, e.g. `"gpt3-6.7b"`.
    pub model: String,
    /// Platform name: `"l4"` or `"a100"`.
    pub platform: String,
    /// Total GPU count (Table-3 shapes).
    pub gpus: u32,
    /// Global batch size.
    pub batch: u64,
    /// Search-space preset name (default `"mist"`).
    pub space: String,
    /// Sequence length (default: platform default).
    pub seq: Option<u64>,
    /// FlashAttention (default) vs standard attention.
    pub flash: bool,
    /// Per-GPU memory cap in GiB (default: the GPU's usable memory).
    pub budget_gib: Option<f64>,
    /// QoS profile (default exhaustive).
    pub qos: Qos,
    /// Bypass the plan cache entirely (no read, no write).
    pub no_cache: bool,
    /// Interference-calibration seed.
    pub seed: u64,
    /// Gradient-accumulation cap.
    pub max_grad_accum: u32,
}

impl Default for PlanRequest {
    fn default() -> Self {
        PlanRequest {
            model: String::new(),
            platform: "l4".to_owned(),
            gpus: 0,
            batch: 0,
            space: "mist".to_owned(),
            seq: None,
            flash: true,
            budget_gib: None,
            qos: Qos::Exhaustive,
            no_cache: false,
            seed: DEFAULT_SEED,
            max_grad_accum: DEFAULT_MAX_GRAD_ACCUM,
        }
    }
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn want_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.as_i64()
        .filter(|&i| i >= 0)
        .map(|i| i as u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn want_str(v: &Value, key: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("`{key}` must be a string")),
    }
}

fn want_bool(v: &Value, key: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` must be a boolean")),
    }
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let Value::Object(fields) = &value else {
            return Err("request must be a JSON object".into());
        };
        let cmd = match field(fields, "cmd") {
            Some(v) => want_str(v, "cmd")?,
            None => "plan".to_owned(),
        };
        match cmd.as_str() {
            "ping" => Ok(Request::Control(Command::Ping)),
            "stats" => Ok(Request::Control(Command::Stats)),
            "shutdown" => Ok(Request::Control(Command::Shutdown)),
            "plan" => Ok(Request::Plan(PlanRequest::from_fields(fields)?)),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }
}

impl PlanRequest {
    fn from_fields(fields: &[(String, Value)]) -> Result<PlanRequest, String> {
        let mut req = PlanRequest::default();
        for (key, value) in fields {
            match key.as_str() {
                "cmd" => {}
                "model" => req.model = want_str(value, key)?,
                "platform" => req.platform = want_str(value, key)?,
                "gpus" => req.gpus = want_u64(value, key)? as u32,
                "batch" => req.batch = want_u64(value, key)?,
                "space" => req.space = want_str(value, key)?,
                "seq" => req.seq = Some(want_u64(value, key)?),
                "flash" => req.flash = want_bool(value, key)?,
                "budget_gib" => {
                    req.budget_gib = Some(
                        value
                            .as_f64()
                            .filter(|b| *b > 0.0)
                            .ok_or("`budget_gib` must be a positive number")?,
                    )
                }
                "qos" => req.qos = Qos::parse(&want_str(value, key)?)?,
                "no_cache" => req.no_cache = want_bool(value, key)?,
                "seed" => req.seed = want_u64(value, key)?,
                "max_grad_accum" => {
                    let cap = want_u64(value, key)? as u32;
                    if cap == 0 {
                        return Err("`max_grad_accum` must be at least 1".into());
                    }
                    req.max_grad_accum = cap;
                }
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        if req.model.is_empty() {
            return Err("`model` is required".into());
        }
        if req.gpus == 0 {
            return Err("`gpus` is required".into());
        }
        if req.batch == 0 {
            return Err("`batch` is required".into());
        }
        if req.seq == Some(0) {
            return Err("`seq` must be positive".into());
        }
        Ok(req)
    }

    /// Renders the request as a wire value (defaults included, so the
    /// line a client sends is self-describing).
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("cmd".into(), Value::Str("plan".into())),
            ("model".into(), Value::Str(self.model.clone())),
            ("platform".into(), Value::Str(self.platform.clone())),
            ("gpus".into(), Value::Int(self.gpus as i64)),
            ("batch".into(), Value::Int(self.batch as i64)),
            ("space".into(), Value::Str(self.space.clone())),
            ("flash".into(), Value::Bool(self.flash)),
            ("qos".into(), Value::Str(self.qos.name().into())),
            ("no_cache".into(), Value::Bool(self.no_cache)),
            ("seed".into(), Value::Int(self.seed as i64)),
            (
                "max_grad_accum".into(),
                Value::Int(self.max_grad_accum as i64),
            ),
        ];
        if let Some(seq) = self.seq {
            fields.push(("seq".into(), Value::Int(seq as i64)));
        }
        if let Some(budget) = self.budget_gib {
            fields.push(("budget_gib".into(), Value::Float(budget)));
        }
        Value::Object(fields)
    }
}

/// Builds an error response line.
pub fn error_response(message: &str) -> String {
    serde_json::to_string(&serde_json::json!({
        "ok": false,
        "error": message,
    }))
    .expect("error response serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_plan_request() {
        let req = Request::parse(r#"{"model": "gpt3-1.3b", "gpus": 2, "batch": 8}"#).unwrap();
        let Request::Plan(plan) = req else {
            panic!("expected plan")
        };
        assert_eq!(plan.model, "gpt3-1.3b");
        assert_eq!(plan.platform, "l4");
        assert_eq!(plan.space, "mist");
        assert_eq!(plan.qos, Qos::Exhaustive);
        assert!(plan.flash);
        assert!(!plan.no_cache);
        assert_eq!(plan.seed, DEFAULT_SEED);
    }

    #[test]
    fn parse_commands() {
        assert_eq!(
            Request::parse(r#"{"cmd": "ping"}"#).unwrap(),
            Request::Control(Command::Ping)
        );
        assert_eq!(
            Request::parse(r#"{"cmd": "shutdown"}"#).unwrap(),
            Request::Control(Command::Shutdown)
        );
        assert_eq!(
            Request::parse(r#"{"cmd": "stats"}"#).unwrap(),
            Request::Control(Command::Stats)
        );
    }

    #[test]
    fn parse_rejects_bad_requests() {
        for bad in [
            "not json",
            "[1, 2]",
            r#"{"cmd": "bogus"}"#,
            r#"{"gpus": 2, "batch": 8}"#,
            r#"{"model": "gpt3-1.3b", "batch": 8}"#,
            r#"{"model": "gpt3-1.3b", "gpus": 2}"#,
            r#"{"model": "gpt3-1.3b", "gpus": 2, "batch": 8, "wat": 1}"#,
            r#"{"model": "gpt3-1.3b", "gpus": 2, "batch": 8, "qos": "fast"}"#,
            r#"{"model": "gpt3-1.3b", "gpus": 2, "batch": 8, "budget_gib": -1}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn request_round_trips_through_wire_value() {
        let req = PlanRequest {
            model: "gpt3-6.7b".into(),
            platform: "a100".into(),
            gpus: 16,
            batch: 64,
            space: "mist-fine".into(),
            seq: Some(4096),
            flash: false,
            budget_gib: Some(30.5),
            qos: Qos::Interactive,
            no_cache: true,
            seed: 7,
            max_grad_accum: 32,
        };
        let line = serde_json::to_string(&req.to_value()).unwrap();
        let Request::Plan(parsed) = Request::parse(&line).unwrap() else {
            panic!("expected plan")
        };
        assert_eq!(parsed, req);
    }
}
