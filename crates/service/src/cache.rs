//! The content-addressed plan cache with JSONL persistence.
//!
//! Every successful tune is stored under two fingerprints:
//!
//! * `exact` — the canonical fingerprint of the *fully resolved* query
//!   (model spec, cluster, search-space content, budget, batch,
//!   calibration seed, grad-accum cap). An exact hit returns the cached
//!   [`TuneOutcome`] without touching the tuner.
//! * `family` — the same material minus global batch, node count and
//!   budget, with the cluster reduced to its tape environment
//!   (platform, GPUs per node, single-node flag). Family neighbours are
//!   eligible warm-start seed donors: their frontier records are
//!   tape-compatible by construction, and per-record candidate-list and
//!   budget checks (in `mist-tuner`) establish exact reusability.
//!
//! Persistence is one JSON line per entry. The vendored `serde_json`
//! prints `f64`s in shortest round-trip form, so load → save reproduces
//! the file byte-for-byte — the golden-testing contract the CI daemon
//! stage relies on.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mist_tuner::{FrontierExport, FrontierRecord, TuneOutcome};
use serde::{Deserialize, Serialize};

/// Human-readable description of the query an entry answered (for
/// debugging and cache inspection; the fingerprints are authoritative).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySummary {
    /// Model preset name.
    pub model: String,
    /// Platform wire name.
    pub platform: String,
    /// Total GPU count.
    pub gpus: u32,
    /// Global batch size.
    pub batch: u64,
    /// Search-space name (QoS restriction included).
    pub space: String,
    /// Per-GPU memory budget (bytes).
    pub budget: f64,
    /// Sequence length.
    pub seq: u64,
    /// QoS profile name.
    pub qos: String,
}

/// One cached plan: the outcome plus its warm-start frontier export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Exact-query fingerprint (cache key).
    pub exact: String,
    /// Family fingerprint (warm-start neighbour key).
    pub family: String,
    /// The resolved query this entry answered.
    pub summary: QuerySummary,
    /// The cached tuning outcome.
    pub outcome: TuneOutcome,
    /// Exported intra-stage frontiers for seeding neighbours.
    pub export: FrontierExport,
}

/// Content-addressed plan cache, optionally backed by a JSONL file.
pub struct PlanCache {
    entries: Vec<CacheEntry>,
    path: Option<PathBuf>,
}

impl PlanCache {
    /// An unbacked in-memory cache.
    pub fn in_memory() -> Self {
        PlanCache {
            entries: Vec::new(),
            path: None,
        }
    }

    /// Opens a file-backed cache, loading existing entries. A missing
    /// file is an empty cache; a malformed line is an error (a corrupt
    /// cache should fail loudly, not silently drop plans).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut cache = PlanCache {
            entries: Vec::new(),
            path: Some(path.clone()),
        };
        match fs::read_to_string(&path) {
            Ok(text) => {
                for (lineno, line) in text.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let entry: CacheEntry = serde_json::from_str(line).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}:{}: {e}", path.display(), lineno + 1),
                        )
                    })?;
                    cache.entries.push(entry);
                }
                Ok(cache)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(cache),
            Err(e) => Err(e),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Exact-fingerprint lookup.
    pub fn lookup(&self, exact: &str) -> Option<&CacheEntry> {
        self.entries.iter().find(|e| e.exact == exact)
    }

    /// All entries of a family except `skip_exact`, in insertion order
    /// (the deterministic donor order for warm-start seeding).
    pub fn family(&self, family: &str, skip_exact: &str) -> Vec<&CacheEntry> {
        self.entries
            .iter()
            .filter(|e| e.family == family && e.exact != skip_exact)
            .collect()
    }

    /// Builds the warm-start seed for a query: the union of all family
    /// donors' frontier records, first donor wins on duplicate record
    /// identity. Returns `None` when there are no donors or no records.
    pub fn warm_seed(&self, family: &str, exact: &str) -> Option<FrontierExport> {
        let mut records: Vec<FrontierRecord> = Vec::new();
        for donor in self.family(family, exact) {
            for record in &donor.export.records {
                if !records.iter().any(|r| {
                    r.mesh == record.mesh
                        && r.role == record.role
                        && r.inflight == record.inflight
                        && r.candidates == record.candidates
                }) {
                    records.push(record.clone());
                }
            }
        }
        if records.is_empty() {
            None
        } else {
            Some(FrontierExport { records })
        }
    }

    /// Inserts an entry, replacing any previous entry with the same
    /// exact fingerprint.
    pub fn insert(&mut self, entry: CacheEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.exact == entry.exact) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Removes the entry with this exact fingerprint, if present.
    /// Returns whether an entry was removed. Used by the planner to
    /// evict cached plans whose certificate no longer checks out.
    pub fn remove(&mut self, exact: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.exact != exact);
        self.entries.len() != before
    }

    /// The cache's JSONL serialization (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&serde_json::to_string(entry).expect("cache entry serializes"));
            out.push('\n');
        }
        out
    }

    /// Persists to the backing file (atomic: temp file + rename).
    /// A no-op for in-memory caches.
    pub fn save(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_jsonl())?;
        fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mist_tuner::SeedCandidate;

    fn entry(exact: &str, family: &str, records: Vec<FrontierRecord>) -> CacheEntry {
        CacheEntry {
            exact: exact.to_owned(),
            family: family.to_owned(),
            summary: QuerySummary {
                model: "gpt3-1.3b".into(),
                platform: "l4".into(),
                gpus: 2,
                batch: 8,
                space: "mist".into(),
                budget: 22.0e9,
                seq: 2048,
                qos: "exhaustive".into(),
            },
            outcome: TuneOutcome {
                plan: mist_schedule::TrainingPlan {
                    grad_accum: 1,
                    stages: Vec::new(),
                    global_batch: 8,
                },
                predicted_iteration: 1.5,
                predicted_throughput: 8.0 / 1.5,
                stage_points: Vec::new(),
                stats: Default::default(),
                telemetry: Default::default(),
                certificate: Default::default(),
            },
            export: FrontierExport { records },
        }
    }

    fn record(dp: u32) -> FrontierRecord {
        FrontierRecord {
            mesh: mist_hardware::DeviceMesh::new(1, 2),
            role: mist_graph::StageRole::Only,
            inflight: 1,
            candidates: vec![SeedCandidate {
                dp,
                tp: 2 / dp.max(1),
                micro_batch: 4,
            }],
            budget: 22.0e9,
            proof: mist_tuner::BudgetProof::Witness,
            per_l: vec![Vec::new(); 4],
        }
    }

    #[test]
    fn insert_replaces_same_exact() {
        let mut cache = PlanCache::in_memory();
        cache.insert(entry("a", "f", vec![]));
        cache.insert(entry("b", "f", vec![]));
        cache.insert(entry("a", "f", vec![record(1)]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a").unwrap().export.records.len(), 1);
    }

    #[test]
    fn warm_seed_unions_family_donors() {
        let mut cache = PlanCache::in_memory();
        cache.insert(entry("a", "f", vec![record(1), record(2)]));
        cache.insert(entry("b", "f", vec![record(2), record(4)])); // dup dp=2
        cache.insert(entry("c", "other", vec![record(8)]));
        let seed = cache.warm_seed("f", "none").unwrap();
        let dps: Vec<u32> = seed.records.iter().map(|r| r.candidates[0].dp).collect();
        assert_eq!(dps, vec![1, 2, 4], "first-donor-wins union, in order");
        // The querying entry itself is never its own donor.
        assert!(cache.warm_seed("other", "c").is_none());
        assert!(cache.warm_seed("unknown", "x").is_none());
    }

    #[test]
    fn jsonl_round_trip_is_byte_stable() {
        let dir = std::env::temp_dir().join(format!("mist-cache-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let mut cache = PlanCache::open(&path).unwrap();
        assert!(cache.is_empty());
        cache.insert(entry("a", "f", vec![record(1)]));
        cache.insert(entry("b", "f", vec![record(2)]));
        cache.save().unwrap();
        let first = fs::read_to_string(&path).unwrap();

        let reloaded = PlanCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        reloaded.save().unwrap();
        let second = fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "load → save must be byte-identical");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("mist-cache-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        fs::write(&path, "{not valid json\n").unwrap();
        assert!(PlanCache::open(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
