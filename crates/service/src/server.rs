//! The daemon: a thread-per-connection line-protocol server over TCP
//! or a Unix-domain socket.
//!
//! Address grammar follows the CLI: an address containing `:` is a TCP
//! `host:port`; anything else is a Unix-socket path. Each connection
//! gets its own thread reading newline-delimited requests; responses
//! are written back one line each. A `shutdown` request sets the stop
//! flag and wakes the accept loop with a dummy connection, so the serve
//! loop exits promptly without polling.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use crate::planner::{Control, PlannerService};

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound planner daemon. Construct with [`Server::bind`], then call
/// [`Server::run`] to serve until a `shutdown` request arrives.
pub struct Server {
    listener: Listener,
    planner: Arc<PlannerService>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (TCP `host:port` if it contains `:`, otherwise a
    /// Unix-socket path). A stale socket file at the path is removed.
    pub fn bind(addr: &str, planner: PlannerService) -> io::Result<Server> {
        let listener = if addr.contains(':') {
            Listener::Tcp(TcpListener::bind(addr)?)
        } else {
            let path = PathBuf::from(addr);
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
            Listener::Unix(UnixListener::bind(&path)?, path)
        };
        Ok(Server {
            listener,
            planner: Arc::new(planner),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address — the actual one, so binding TCP port 0 yields
    /// a connectable `host:port`.
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into()),
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// The planner behind this server.
    pub fn planner(&self) -> &PlannerService {
        &self.planner
    }

    /// Serves connections until a `shutdown` request. Connection
    /// threads are detached; in-flight handlers die with the process
    /// when the caller exits after `run` returns.
    pub fn run(self) -> io::Result<()> {
        let wake_addr = self.local_addr();
        loop {
            let stream: Box<dyn Conn> = match &self.listener {
                Listener::Tcp(l) => Box::new(l.accept()?.0),
                Listener::Unix(l, _) => Box::new(l.accept()?.0),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let planner = self.planner.clone();
            let shutdown = self.shutdown.clone();
            let wake = wake_addr.clone();
            thread::spawn(move || {
                if let Err(e) = serve_connection(&planner, stream, &shutdown, &wake) {
                    // Client hangups are routine; log and move on.
                    eprintln!("mist-service: connection error: {e}");
                }
            });
        }
        if let Listener::Unix(_, path) = &self.listener {
            std::fs::remove_file(path).ok();
        }
        Ok(())
    }
}

/// What both stream types offer: buffered reads via `try_clone`d
/// handles would complicate things, so the reader owns the stream and
/// writes go through the `BufReader::get_mut` escape hatch.
trait Conn: io::Read + io::Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

fn serve_connection(
    planner: &PlannerService,
    stream: Box<dyn Conn>,
    shutdown: &AtomicBool,
    wake_addr: &str,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client closed the connection.
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = planner.handle_line(line.trim());
        let stream = reader.get_mut();
        stream.write_all(response.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        if control == Control::Shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake(wake_addr);
            return Ok(());
        }
    }
}

/// Unblocks the accept loop with a throwaway connection.
fn wake(addr: &str) {
    if addr.contains(':') {
        TcpStream::connect(addr).ok();
    } else {
        UnixStream::connect(addr).ok();
    }
}

/// One-shot client: connects to `addr`, sends `line`, returns the
/// single response line. Used by `mist-cli query` and the CI stage.
pub fn request(addr: &str, line: &str) -> io::Result<String> {
    let send = |mut stream: Box<dyn Conn>| -> io::Result<String> {
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        if response.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without responding",
            ));
        }
        Ok(response.trim_end().to_owned())
    };
    if addr.contains(':') {
        send(Box::new(TcpStream::connect(addr)?))
    } else {
        send(Box::new(UnixStream::connect(addr)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;

    fn spawn(addr: &str) -> (String, thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(addr, PlannerService::new(PlanCache::in_memory())).unwrap();
        let bound = server.local_addr();
        (bound, thread::spawn(move || server.run()))
    }

    #[test]
    fn tcp_ping_stats_shutdown() {
        let (addr, handle) = spawn("127.0.0.1:0");
        let pong = request(&addr, r#"{"cmd": "ping"}"#).unwrap();
        assert!(pong.contains("\"pong\""), "{pong}");
        let stats = request(&addr, r#"{"cmd": "stats"}"#).unwrap();
        assert!(stats.contains("\"entries\""), "{stats}");
        let bye = request(&addr, r#"{"cmd": "shutdown"}"#).unwrap();
        assert!(bye.contains("\"shutdown\""), "{bye}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn unix_socket_round_trip_and_cleanup() {
        let path =
            std::env::temp_dir().join(format!("mist-serve-test-{}.sock", std::process::id()));
        let path_str = path.display().to_string();
        let (addr, handle) = spawn(&path_str);
        assert_eq!(addr, path_str);
        let err = request(&addr, "not json").unwrap();
        assert!(
            err.contains("\"ok\": false") || err.contains("\"ok\":false"),
            "{err}"
        );
        let bye = request(&addr, r#"{"cmd": "shutdown"}"#).unwrap();
        assert!(bye.contains("\"shutdown\""), "{bye}");
        handle.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file must be cleaned up");
    }

    #[test]
    fn one_connection_can_issue_many_requests() {
        let (addr, handle) = spawn("127.0.0.1:0");
        let mut stream = TcpStream::connect(&addr).unwrap();
        for _ in 0..3 {
            stream.write_all(b"{\"cmd\": \"ping\"}\n").unwrap();
        }
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"pong\""), "{line}");
        }
        drop(reader);
        drop(stream);
        request(&addr, r#"{"cmd": "shutdown"}"#).unwrap();
        handle.join().unwrap().unwrap();
    }
}
