//! `mist-service` — the planner as a resident service.
//!
//! Re-tuning from scratch for every `(model, cluster, batch)` variation
//! wastes the dominant cost of planning: the intra-stage sweeps. This
//! crate wraps the tuner in a daemon with a content-addressed
//! [`PlanCache`]:
//!
//! * an **exact hit** (same fully resolved query) returns the cached
//!   [`mist_tuner::TuneOutcome`] without touching the tuner;
//! * a **family neighbour** (same architecture, tape environment,
//!   search space and calibration seed — different batch, node count,
//!   budget or grad-accum cap) warm-starts the tuner from the donor's
//!   exported intra-stage Pareto frontiers, producing byte-identical
//!   results while evaluating strictly fewer configurations (soundness
//!   argument in `mist_tuner::seed`);
//! * everything else runs **cold** and seeds the cache for later.
//!
//! The wire protocol is line-delimited JSON over TCP or a Unix socket
//! ([`protocol`]), with `interactive`/`exhaustive` QoS profiles
//! ([`Qos`]) that bound work deterministically rather than by
//! wall-clock. `mist-cli serve` and `mist-cli query` are thin shims
//! over [`Server`] and [`request`].

mod cache;
mod fingerprint;
mod planner;
pub mod protocol;
mod qos;
mod server;

pub use cache::{CacheEntry, PlanCache, QuerySummary};
pub use fingerprint::{canonical_fingerprint, sha256_hex};
pub use planner::{Control, PlannerService};
pub use protocol::{PlanRequest, Request};
pub use qos::{Qos, INTERACTIVE_MAX_OUTER};
pub use server::{request, Server};
