//! The planner: query resolution, cache orchestration, warm-started
//! tuning, and response construction.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use mist_hardware::{ClusterSpec, OpCostDb, Platform, GIB};
use mist_interference::{fit, InterferenceModel};
use mist_models::{falcon, gpt3, llama, AttentionImpl, ModelSize, ModelSpec};
use mist_sim::benchmark_interference;
use mist_tuner::{SearchSpace, TuneOutcome, Tuner};
use parking_lot::{Condvar, Mutex};
use serde::Value;

use crate::cache::{CacheEntry, PlanCache, QuerySummary};
use crate::fingerprint::canonical_fingerprint;
use crate::protocol::{error_response, Command, PlanRequest, Request};

/// Calibration-benchmark sample count (matches `MistSession`).
const CALIBRATION_SAMPLES: usize = 400;
/// Interference-fit iteration count (matches `MistSession`).
const FIT_ITERATIONS: usize = 3000;

/// A fully resolved query: every default applied, every preset
/// expanded. Fingerprints are taken over this, never over the wire
/// form, so spelling variants (`"gpt3"` vs `"gpt"`) cannot split the
/// cache.
struct Resolved {
    model: ModelSpec,
    cluster: ClusterSpec,
    space: SearchSpace,
    budget: f64,
    exact: String,
    family: String,
    summary: QuerySummary,
}

/// What `handle_line` tells the server to do after responding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Stop the accept loop and exit.
    Shutdown,
}

/// The resident planner backing `mist-cli serve`.
pub struct PlannerService {
    cache: Mutex<PlanCache>,
    // One interference model per (platform, seed): `benchmark_interference`
    // + `fit` depend on nothing else, so all queries share the result.
    calibrations: Mutex<HashMap<(Platform, u64), Arc<InterferenceModel>>>,
    // Single-flight: exact fingerprints currently being tuned. A second
    // query for the same fingerprint waits and then hits the cache
    // instead of duplicating the tune.
    inflight: Mutex<HashSet<String>>,
    inflight_cv: Condvar,
    hits: mist_telemetry::Counter,
    misses: mist_telemetry::Counter,
    warm_starts: mist_telemetry::Counter,
    cert_rejections: mist_telemetry::Counter,
}

impl PlannerService {
    /// Creates a planner over a cache.
    pub fn new(cache: PlanCache) -> Self {
        PlannerService {
            cache: Mutex::new(cache),
            calibrations: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            hits: mist_telemetry::Counter::new(),
            misses: mist_telemetry::Counter::new(),
            warm_starts: mist_telemetry::Counter::new(),
            cert_rejections: mist_telemetry::Counter::new(),
        }
    }

    /// Exact-hit count since startup.
    pub fn cache_hits(&self) -> u64 {
        self.hits.value()
    }

    /// Tuner-run count since startup (cold + warm).
    pub fn cache_misses(&self) -> u64 {
        self.misses.value()
    }

    /// Warm-started tuner runs since startup.
    pub fn warm_start_count(&self) -> u64 {
        self.warm_starts.value()
    }

    /// Cached plans evicted because their certificate failed re-check.
    pub fn cert_rejection_count(&self) -> u64 {
        self.cert_rejections.value()
    }

    /// Handles one request line; returns the response line and whether
    /// the server should shut down.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        match Request::parse(line) {
            Err(e) => (error_response(&e), Control::Continue),
            Ok(Request::Control(Command::Ping)) => (
                serde_json::to_string(&serde_json::json!({"ok": true, "pong": true}))
                    .expect("ping response"),
                Control::Continue,
            ),
            Ok(Request::Control(Command::Stats)) => {
                let entries = self.cache.lock().len() as u64;
                let value = serde_json::json!({
                    "ok": true,
                    "cache": self.cache_counters(entries),
                });
                (
                    serde_json::to_string(&value).expect("stats response"),
                    Control::Continue,
                )
            }
            Ok(Request::Control(Command::Shutdown)) => (
                serde_json::to_string(&serde_json::json!({"ok": true, "shutdown": true}))
                    .expect("shutdown response"),
                Control::Shutdown,
            ),
            Ok(Request::Plan(req)) => (
                serde_json::to_string(&self.plan(&req)).expect("plan response"),
                Control::Continue,
            ),
        }
    }

    /// Answers a plan query (the full cold/hit/warm state machine).
    pub fn plan(&self, req: &PlanRequest) -> Value {
        let started = Instant::now();
        let resolved = match self.resolve(req) {
            Ok(r) => r,
            Err(e) => {
                return serde_json::json!({"ok": false, "error": e});
            }
        };
        let _span = mist_telemetry::span!(
            "service.query",
            gpus = resolved.summary.gpus,
            batch = resolved.summary.batch
        );

        if !req.no_cache {
            if let Some(value) = self.try_hit(&resolved, req.seed, started) {
                return value;
            }
        }

        // Single-flight on the exact fingerprint: duplicate concurrent
        // queries wait here, then (cache permitting) take the hit path.
        let _flight = self.begin_flight(resolved.exact.clone());
        if !req.no_cache {
            if let Some(value) = self.try_hit(&resolved, req.seed, started) {
                return value;
            }
        }

        let interference = self.calibration(resolved.cluster.platform, req.seed);
        let warm_seed = if req.no_cache {
            None
        } else {
            self.cache
                .lock()
                .warm_seed(&resolved.family, &resolved.exact)
        };
        let db = OpCostDb::new(resolved.cluster.gpu.clone());
        let mut tuner = Tuner::new(
            &resolved.model,
            &resolved.cluster,
            &db,
            &resolved.space,
            &interference,
        )
        .with_max_grad_accum(req.max_grad_accum)
        .with_budget(resolved.budget)
        .with_max_outer_candidates(req.qos.max_outer_candidates());
        if let Some(seed) = warm_seed {
            tuner = tuner.with_frontier_seed(Arc::new(seed));
        }

        match tuner.tune_with_export(req.batch) {
            None => {
                self.misses.inc();
                let entries = self.cache.lock().len() as u64;
                serde_json::json!({
                    "ok": true,
                    "result": serde_json::json!({
                        "feasible": false,
                        "model": resolved.model.name,
                        "space": resolved.space.name,
                    }),
                    "work": serde_json::json!({
                        "source": "cold",
                        "query_secs": started.elapsed().as_secs_f64(),
                        "configs_evaluated": 0u64,
                        "seeded_frontiers": 0u64,
                        "cache": self.cache_counters(entries),
                    }),
                })
            }
            Some((outcome, export)) => {
                let seeded = outcome.telemetry.counter("tuner.seeded_frontiers");
                self.misses.inc();
                let source = if seeded > 0 {
                    self.warm_starts.inc();
                    "warm"
                } else {
                    "cold"
                };
                if !req.no_cache {
                    let mut cache = self.cache.lock();
                    cache.insert(CacheEntry {
                        exact: resolved.exact.clone(),
                        family: resolved.family.clone(),
                        summary: resolved.summary.clone(),
                        outcome: outcome.clone(),
                        export,
                    });
                    if let Err(e) = cache.save() {
                        eprintln!("mist-service: cache save failed: {e}");
                    }
                }
                self.respond(&resolved, &outcome, source, seeded, started)
            }
        }
    }

    /// Exact-hit fast path. Before a cached plan is served its
    /// certificate is re-derived through the interval framework; an
    /// entry that no longer checks out (corrupted file, stale wire
    /// format, tampering) is evicted and the query falls through to a
    /// fresh tune instead of serving a bad plan.
    fn try_hit(&self, resolved: &Resolved, seed: u64, started: Instant) -> Option<Value> {
        let outcome = {
            let cache = self.cache.lock();
            cache.lookup(&resolved.exact)?.outcome.clone()
        };
        let interference = self.calibration(resolved.cluster.platform, seed);
        let db = OpCostDb::new(resolved.cluster.gpu.clone());
        let report = mist_tuner::certify_plan(
            &resolved.model,
            &resolved.cluster,
            &db,
            &interference,
            &outcome.plan,
            &outcome.stage_points,
            outcome.predicted_iteration,
            resolved.budget,
            resolved.space.overlap_aware,
            "serve",
        );
        if !report.ok() || report.certificate != outcome.certificate {
            self.cert_rejections.inc();
            mist_telemetry::counter_add("service.cache.cert_rejections", 1);
            eprintln!(
                "mist-service: evicting cached plan {}: certificate re-check failed: {:?}",
                resolved.exact, report.failures
            );
            self.cache.lock().remove(&resolved.exact);
            return None;
        }
        self.hits.inc();
        mist_telemetry::counter_add("service.cache.hits", 1);
        Some(self.respond(resolved, &outcome, "hit", 0, started))
    }

    /// Builds the plan response. Everything under `"result"` is a pure
    /// function of the resolved query — byte-identical across
    /// cold/hit/warm — while `"work"` carries the run-variable fields.
    fn respond(
        &self,
        resolved: &Resolved,
        outcome: &TuneOutcome,
        source: &str,
        seeded: u64,
        started: Instant,
    ) -> Value {
        let entries = self.cache.lock().len() as u64;
        serde_json::json!({
            "ok": true,
            "result": serde_json::json!({
                "feasible": true,
                "model": resolved.model.name,
                "space": resolved.space.name,
                "exact_fingerprint": resolved.exact,
                "family_fingerprint": resolved.family,
                "predicted_iteration_s": outcome.predicted_iteration,
                "predicted_throughput": outcome.predicted_throughput,
                "plan": outcome.plan,
                "stage_points": outcome.stage_points,
            }),
            "work": serde_json::json!({
                "source": source,
                "query_secs": started.elapsed().as_secs_f64(),
                "configs_evaluated": outcome.stats.configs_evaluated,
                "seeded_frontiers": seeded,
                "stats": outcome.stats,
                "telemetry": outcome.telemetry,
                "cache": self.cache_counters(entries),
            }),
        })
    }

    fn cache_counters(&self, entries: u64) -> Value {
        serde_json::json!({
            "hits": self.hits.value(),
            "misses": self.misses.value(),
            "warm_starts": self.warm_starts.value(),
            "cert_rejections": self.cert_rejections.value(),
            "entries": entries,
        })
    }

    /// Memoized interference calibration per (platform, seed).
    fn calibration(&self, platform: Platform, seed: u64) -> Arc<InterferenceModel> {
        if let Some(hit) = self.calibrations.lock().get(&(platform, seed)) {
            return hit.clone();
        }
        let prior = match platform {
            Platform::GcpL4 => InterferenceModel::pcie_defaults(),
            Platform::AwsA100 => InterferenceModel::nvlink_defaults(),
        };
        let _span = mist_telemetry::span!("session.calibrate", samples = CALIBRATION_SAMPLES);
        let samples = benchmark_interference(platform, CALIBRATION_SAMPLES, seed);
        let model = Arc::new(fit(&prior, &samples, FIT_ITERATIONS, seed ^ 0x5EED).0);
        // First insert wins if two queries raced on the same key.
        self.calibrations
            .lock()
            .entry((platform, seed))
            .or_insert(model)
            .clone()
    }

    /// Registers `exact` as in flight, waiting while another thread
    /// tunes it. The guard deregisters and wakes waiters on drop.
    fn begin_flight(&self, exact: String) -> FlightGuard<'_> {
        let mut inflight = self.inflight.lock();
        while inflight.contains(&exact) {
            inflight = self.inflight_cv.wait(inflight);
        }
        inflight.insert(exact.clone());
        FlightGuard {
            planner: self,
            exact,
        }
    }

    /// Resolves the wire request into specs and fingerprints.
    fn resolve(&self, req: &PlanRequest) -> Result<Resolved, String> {
        let platform = match req.platform.to_ascii_lowercase().as_str() {
            "l4" | "gcp" => Platform::GcpL4,
            "a100" | "aws" => Platform::AwsA100,
            other => return Err(format!("unknown platform `{other}` (l4|a100)")),
        };
        let platform_name = match platform {
            Platform::GcpL4 => "l4",
            Platform::AwsA100 => "a100",
        };
        let seq = req.seq.unwrap_or(match platform {
            Platform::GcpL4 => 2048,
            Platform::AwsA100 => 4096,
        });
        if req.gpus > 8 && !req.gpus.is_multiple_of(8) {
            return Err(format!(
                "gpus {} is not a Table-3 cluster shape (1-8, or a multiple of 8)",
                req.gpus
            ));
        }
        let model = parse_model(&req.model, seq, req.flash)?;
        let cluster = ClusterSpec::for_gpu_count(platform, req.gpus);
        let space = req.qos.restrict(&parse_space(&req.space)?);
        let budget = match req.budget_gib {
            Some(gib) => gib * GIB,
            None => cluster.gpu.memory_bytes,
        };

        let arch = serde_json::to_value(&model).map_err(|e| e.to_string())?;
        let space_value = serde_json::to_value(&space).map_err(|e| e.to_string())?;
        let exact = canonical_fingerprint(&serde_json::json!({
            "arch": arch.clone(),
            "cluster": serde_json::json!({
                "platform": platform_name,
                "num_nodes": cluster.num_nodes,
                "gpus_per_node": cluster.gpus_per_node,
            }),
            "space": space_value.clone(),
            "budget": budget,
            "batch": req.batch,
            "seed": req.seed,
            "max_grad_accum": req.max_grad_accum,
        }));
        // The family drops batch, node count, budget and the grad-accum
        // cap: those deltas are warm-startable. It keeps everything the
        // compiled tapes and the calibrated interference model can see —
        // platform (links, GPU, calibration), GPUs per node and the
        // single-node collective-placement branch.
        let family = canonical_fingerprint(&serde_json::json!({
            "arch": arch,
            "tape_env": serde_json::json!({
                "platform": platform_name,
                "gpus_per_node": cluster.gpus_per_node,
                "single_node": cluster.num_nodes == 1,
            }),
            "space": space_value,
            "seed": req.seed,
        }));
        let summary = QuerySummary {
            model: model.name.clone(),
            platform: platform_name.to_owned(),
            gpus: req.gpus,
            batch: req.batch,
            space: space.name.clone(),
            budget,
            seq,
            qos: req.qos.name().to_owned(),
        };
        Ok(Resolved {
            model,
            cluster,
            space,
            budget,
            exact,
            family,
            summary,
        })
    }
}

struct FlightGuard<'a> {
    planner: &'a PlannerService,
    exact: String,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.planner.inflight.lock().remove(&self.exact);
        self.planner.inflight_cv.notify_all();
    }
}

/// Parses a `family-size` model preset name (mirrors the CLI grammar).
fn parse_model(name: &str, seq: u64, flash: bool) -> Result<ModelSpec, String> {
    let attn = if flash {
        AttentionImpl::Flash
    } else {
        AttentionImpl::Standard
    };
    let (family, size) = name
        .split_once('-')
        .ok_or_else(|| format!("bad model name `{name}` (expected family-size)"))?;
    let size = match size.to_ascii_lowercase().as_str() {
        "1.3b" => ModelSize::B1_3,
        "2.6b" | "2.7b" => ModelSize::B2_6,
        "6.7b" | "7b" => ModelSize::B6_7,
        "13b" => ModelSize::B13,
        "22b" => ModelSize::B22,
        "40b" => ModelSize::B40,
        other => return Err(format!("unknown model size `{other}`")),
    };
    match family.to_ascii_lowercase().as_str() {
        "gpt3" | "gpt" => Ok(gpt3(size, seq, attn)),
        "llama" => Ok(llama(size, seq, attn)),
        "falcon" => Ok(falcon(size, seq, attn)),
        other => Err(format!("unknown model family `{other}`")),
    }
}

/// Parses a search-space preset name (mirrors the CLI grammar).
fn parse_space(name: &str) -> Result<SearchSpace, String> {
    match name.to_ascii_lowercase().as_str() {
        "mist" => Ok(SearchSpace::mist()),
        "mist-fine" => Ok(SearchSpace::mist_fine()),
        "megatron" | "megatron-lm" => Ok(mist_baselines::Baseline::MegatronLM.space()),
        "deepspeed" => Ok(mist_baselines::Baseline::DeepSpeed.space()),
        "aceso" => Ok(mist_baselines::Baseline::Aceso.space()),
        "alpa" => Ok(mist_baselines::Baseline::Alpa.space()),
        "uniform" => Ok(mist_baselines::Baseline::UniformHeuristic.space()),
        other => Err(format!("unknown search space `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::Qos;

    fn req(batch: u64) -> PlanRequest {
        PlanRequest {
            model: "gpt3-1.3b".into(),
            platform: "l4".into(),
            gpus: 2,
            batch,
            max_grad_accum: 8,
            ..PlanRequest::default()
        }
    }

    fn result_json(v: &Value) -> String {
        let Value::Object(fields) = v else {
            panic!("response must be an object")
        };
        let result = serde::get_field(fields, "result").expect("result field");
        serde_json::to_string(result).unwrap()
    }

    fn work_str<'a>(v: &'a Value, key: &str) -> &'a Value {
        let Value::Object(fields) = v else {
            panic!("response must be an object")
        };
        let Value::Object(work) = serde::get_field(fields, "work").expect("work field") else {
            panic!("work must be an object")
        };
        serde::get_field(work, key).expect(key)
    }

    #[test]
    fn cold_hit_warm_state_machine() {
        let planner = PlannerService::new(PlanCache::in_memory());

        let cold16 = planner.plan(&req(16));
        assert_eq!(work_str(&cold16, "source"), &Value::Str("cold".into()));
        assert_eq!(planner.cache_misses(), 1);

        let hit16 = planner.plan(&req(16));
        assert_eq!(work_str(&hit16, "source"), &Value::Str("hit".into()));
        assert_eq!(planner.cache_hits(), 1);
        assert_eq!(
            result_json(&cold16),
            result_json(&hit16),
            "exact hit must reproduce the cold result byte-for-byte"
        );

        let warm32 = planner.plan(&req(32));
        assert_eq!(work_str(&warm32, "source"), &Value::Str("warm".into()));
        assert_eq!(planner.warm_start_count(), 1);

        // Reference: a cache-bypassing cold tune at the same batch.
        let mut bypass = req(32);
        bypass.no_cache = true;
        let cold32 = planner.plan(&bypass);
        assert_eq!(work_str(&cold32, "source"), &Value::Str("cold".into()));
        assert_eq!(
            result_json(&warm32),
            result_json(&cold32),
            "warm-start result must be byte-identical to cold"
        );
        let configs = |v: &Value| work_str(v, "configs_evaluated").as_i64().unwrap();
        assert!(
            configs(&warm32) < configs(&cold32),
            "warm {} must evaluate strictly fewer configs than cold {}",
            configs(&warm32),
            configs(&cold32)
        );
        assert!(work_str(&warm32, "seeded_frontiers").as_i64().unwrap() > 0);
    }

    #[test]
    fn no_cache_bypasses_read_and_write() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let mut r = req(16);
        r.no_cache = true;
        planner.plan(&r);
        planner.plan(&r);
        assert_eq!(planner.cache_hits(), 0);
        assert_eq!(planner.cache_misses(), 2);
        assert_eq!(planner.cache.lock().len(), 0);
    }

    #[test]
    fn corrupted_cached_plan_is_evicted_and_retuned() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let cold = planner.plan(&req(16));
        assert_eq!(work_str(&cold, "source"), &Value::Str("cold".into()));

        // Tamper with the cached plan's memory claim.
        let exact = planner.resolve(&req(16)).unwrap().exact;
        {
            let mut cache = planner.cache.lock();
            let mut entry = cache.lookup(&exact).unwrap().clone();
            entry.outcome.stage_points[0].mem_fwd *= 2.0;
            cache.insert(entry);
        }

        // The serve-time certificate re-check must refuse the corrupted
        // entry, evict it, and fall through to a fresh tune.
        let after = planner.plan(&req(16));
        assert_eq!(work_str(&after, "source"), &Value::Str("cold".into()));
        assert_eq!(planner.cert_rejection_count(), 1);
        assert_eq!(planner.cache_hits(), 0);
        assert_eq!(
            result_json(&cold),
            result_json(&after),
            "the re-tune must reproduce the honest result"
        );

        // The re-tune repopulated the cache with a certified entry.
        let hit = planner.plan(&req(16));
        assert_eq!(work_str(&hit, "source"), &Value::Str("hit".into()));
        assert_eq!(planner.cache_hits(), 1);
        assert_eq!(planner.cert_rejection_count(), 1);
    }

    #[test]
    fn qos_profiles_do_not_share_fingerprints() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let exhaustive = planner.resolve(&req(16)).unwrap();
        let mut r = req(16);
        r.qos = Qos::Interactive;
        let interactive = planner.resolve(&r).unwrap();
        assert_ne!(exhaustive.exact, interactive.exact);
        assert_ne!(exhaustive.family, interactive.family);
    }

    #[test]
    fn fingerprints_separate_what_they_must() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let base = planner.resolve(&req(16)).unwrap();

        // Batch delta: same family, different exact (warm-startable).
        let batch = planner.resolve(&req(32)).unwrap();
        assert_ne!(base.exact, batch.exact);
        assert_eq!(base.family, batch.family);

        // Budget delta: same family, different exact.
        let mut r = req(16);
        r.budget_gib = Some(12.0);
        let budget = planner.resolve(&r).unwrap();
        assert_ne!(base.exact, budget.exact);
        assert_eq!(base.family, budget.family);

        // Seed delta changes the interference fit: different family.
        let mut r = req(16);
        r.seed = 7;
        let seed = planner.resolve(&r).unwrap();
        assert_ne!(base.family, seed.family);

        // Model delta: different family.
        let mut r = req(16);
        r.model = "llama-1.3b".into();
        let model = planner.resolve(&r).unwrap();
        assert_ne!(base.family, model.family);

        // 8→16 GPUs crosses the single-node boundary: different family.
        let planner2 = PlannerService::new(PlanCache::in_memory());
        let mut r8 = req(16);
        r8.gpus = 8;
        let mut r16 = req(16);
        r16.gpus = 16;
        let mut r32 = req(16);
        r32.gpus = 32;
        let g8 = planner2.resolve(&r8).unwrap();
        let g16 = planner2.resolve(&r16).unwrap();
        let g32 = planner2.resolve(&r32).unwrap();
        assert_ne!(g8.family, g16.family, "single-node flag splits families");
        assert_eq!(g16.family, g32.family, "multi-node deltas share a family");
        assert_ne!(g16.exact, g32.exact);
    }

    #[test]
    fn infeasible_queries_are_reported_not_cached() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let mut r = req(4);
        r.model = "gpt3-2.6b".into();
        r.space = "megatron".into();
        r.budget_gib = Some(2.0); // Nothing fits 2 GiB without offloading.
        r.max_grad_accum = 2;
        let v = planner.plan(&r);
        let Value::Object(fields) = &v else { panic!() };
        let Value::Object(result) = serde::get_field(fields, "result").unwrap() else {
            panic!()
        };
        assert_eq!(
            serde::get_field(result, "feasible").unwrap(),
            &Value::Bool(false)
        );
        assert_eq!(planner.cache.lock().len(), 0);
    }

    #[test]
    fn handle_line_commands() {
        let planner = PlannerService::new(PlanCache::in_memory());
        let (pong, c) = planner.handle_line(r#"{"cmd": "ping"}"#);
        assert_eq!(c, Control::Continue);
        assert!(pong.contains("\"pong\""));
        let (stats, c) = planner.handle_line(r#"{"cmd": "stats"}"#);
        assert_eq!(c, Control::Continue);
        assert!(stats.contains("\"entries\""));
        let (bye, c) = planner.handle_line(r#"{"cmd": "shutdown"}"#);
        assert_eq!(c, Control::Shutdown);
        assert!(bye.contains("\"shutdown\""));
        let (err, c) = planner.handle_line("garbage");
        assert_eq!(c, Control::Continue);
        assert!(err.contains("\"ok\":false") || err.contains("\"ok\": false"));
    }
}
