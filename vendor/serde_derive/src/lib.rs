//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` crate's value-model traits, parsing the item with
//! the bare `proc_macro` API (no `syn`/`quote` available offline).
//!
//! Supported shapes — everything the workspace derives on:
//!
//! * structs with named fields (serialized as an ordered object),
//! * tuple structs (newtypes serialize transparently; wider tuples as
//!   arrays),
//! * enums with unit variants (serialized as the variant-name string),
//!   struct variants (`{"Variant": {..fields..}}`) and tuple variants
//!   (`{"Variant": value-or-array}`) — serde's external tagging.
//!
//! Generic types are intentionally unsupported; deriving on one fails
//! with a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Strips leading attributes / visibility from a token list in place,
/// starting at `i`. Returns the new index.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#[...]` — the bracket group follows.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` visibility group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    i
}

/// Splits a token list on top-level commas (angle-bracket aware).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses `name: Type` pieces into field names.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    for piece in split_top_level_commas(&tokens) {
        let i = skip_meta(&piece, 0);
        match piece.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
            None => {}
        }
    }
    Ok(fields)
}

/// Counts tuple-struct / tuple-variant fields.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens).len()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            for piece in split_top_level_commas(&body_tokens) {
                let j = skip_meta(&piece, 0);
                let vname = match piece.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => return Err(format!("unexpected variant token: {other}")),
                    None => continue,
                };
                let kind = match piece.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        VariantKind::Named(parse_named_fields(g)?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        VariantKind::Tuple(parse_tuple_arity(g))
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: vname, kind });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "o.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut o: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(o)\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "o.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut o: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\n\
                                 ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Object(o))])\n}}\n"
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 ({vn:?}.to_string(), {payload})]),\n",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n}}\n}}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(o, {f:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Object(o) => Ok({name} {{ {inits} }}),\n\
                 _ => Err(::serde::Error::msg(concat!(\"expected object for \", \
                 stringify!({name})))),\n\
                 }}\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                     Ok({name}({})),\n\
                     _ => Err(::serde::Error::msg(\"expected array\")),\n}}",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
             Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::get_field(fo, {f:?})?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{:?} => match payload {{\n\
                             ::serde::Value::Object(fo) => Ok({name}::{} {{ {inits} }}),\n\
                             _ => Err(::serde::Error::msg(\"expected object payload\")),\n}},\n",
                            v.name, v.name
                        ))
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "Ok({name}::{}(::serde::Deserialize::from_value(payload)?))",
                                v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&items[{k}])?")
                                })
                                .collect();
                            format!(
                                "match payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}::{}({})),\n\
                                 _ => Err(::serde::Error::msg(\"expected array payload\")),\n}}",
                                v.name,
                                items.join(", ")
                            )
                        };
                        Some(format!("{:?} => {{ {body} }},\n", v.name))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, payload) = &o[0];\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::msg(concat!(\"expected variant for \", \
                 stringify!({name})))),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse().unwrap()
}
