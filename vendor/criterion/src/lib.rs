//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with genuine
//! wall-clock measurement: each benchmark is warmed up, then timed over
//! enough iterations to fill the measurement window, and the mean
//! ns/iter (plus derived throughput) is printed.
//!
//! No statistics, plots, or baseline comparison — just honest timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.measurement_time, f);
        print_report(&name.into(), None, &report);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Consumes CLI arguments (`--bench`, filters); accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        // `cargo bench` passes `--bench` to harness=false targets; no
        // filtering is implemented, every benchmark runs.
        let _ = std::env::args();
        self.sample_size = self.sample_size.max(10);
        self
    }

    /// Final summary hook (no-op; reports are printed as benches run).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.measurement_time, f);
        let full = format!("{}/{}", self.name, id.into().0);
        print_report(&full, self.throughput, &report);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.sample_size, self.measurement_time, |b| f(b, input));
        let full = format!("{}/{}", self.name, id.0);
        print_report(&full, self.throughput, &report);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Per-iteration work declaration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean_ns: f64,
    samples: usize,
    total_iters: u64,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) -> Report {
    // Calibrate: find an iteration count where one sample takes ~1ms+,
    // so Instant overhead is negligible.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    // Size samples to fill the measurement window.
    let mut probe = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_sample = probe.elapsed.max(Duration::from_micros(1));
    let budget_samples =
        (measurement_time.as_secs_f64() / per_sample.as_secs_f64()).ceil() as usize;
    let samples = sample_size.clamp(2, budget_samples.max(2));

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    Report {
        mean_ns: total.as_secs_f64() * 1e9 / total_iters.max(1) as f64,
        samples,
        total_iters,
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn print_report(name: &str, throughput: Option<Throughput>, report: &Report) {
    let mut line = format!(
        "{name:<48} {:>12}/iter  ({} samples, {} iters)",
        human_time(report.mean_ns),
        report.samples,
        report.total_iters
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) => format!("{:.3e} elem/s", n as f64 / (report.mean_ns / 1e9)),
            Throughput::Bytes(n) => format!("{:.3e} B/s", n as f64 / (report.mean_ns / 1e9)),
        };
        line.push_str(&format!("  {per_sec}"));
    }
    println!("{line}");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let report = run_bench(3, Duration::from_millis(20), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert!(report.mean_ns > 0.0);
        assert!(report.total_iters > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("dp", 4).0, "dp/4");
        assert_eq!(BenchmarkId::from_parameter(100).0, "100");
    }
}
