//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] model as JSON.
//!
//! Covers the surface the workspace uses: `to_string`, `to_string_pretty`
//! (2-space indent), `to_value`, `from_str`, and a flat-object `json!`
//! macro. Formatting is stable and deterministic — integers print without
//! a decimal point, floats always carry one (or an exponent), objects keep
//! field insertion order.

pub use serde::{Error, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Builds a [`Value::Object`] literal: `json!({ "key": expr, ... })`.
///
/// Values are any `serde::Serialize` expressions (including `Value`s).
#[macro_export]
macro_rules! json {
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($k.to_string(), $crate::to_value(&$v).unwrap()) ),*
        ])
    };
}

// --- Writer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json rejects non-finite floats; emitting null keeps the
        // output valid JSON without failing the whole report.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Rust's shortest formatting prints `1` for 1.0_f64 — keep the float
    // marker so ints and floats stay distinguishable in the output.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Array(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_keep_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&3u32).unwrap(), "3");
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "x": 1u32, "y": Value::Null, "z": Some(2.0f64) });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"x\":1,\"y\":null,\"z\":2.0}"
        );
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str(r#"{"a":[1,2.5,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2.5,{"b":"c"}],"d":null}"#);
    }
}
