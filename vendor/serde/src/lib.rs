//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of serde's surface the workspace uses: the
//! `Serialize` / `Deserialize` traits (re-exported as derive macros from
//! `serde_derive`) plus a small JSON-shaped [`Value`] model that
//! `serde_json` renders and parses.
//!
//! The design is deliberately simpler than real serde: serialization goes
//! through an owned [`Value`] tree instead of a visitor pipeline. That is
//! plenty for the workspace's needs (result files, plan round-trips) and
//! keeps the vendored code auditable.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Object fields keep insertion order so struct serialization is stable
/// and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with a decimal point or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view: both `Int` and `Float` coerce to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats with zero fraction coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a field in an object body (derive-macro helper).
pub fn get_field<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

// --- Serialize impls -------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

// --- Deserialize impls -----------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // The workspace stores op names as `&'static str`; leaking the
            // parsed string is the only way to hand back a 'static borrow.
            // Deserialization happens on small test/report payloads, so
            // the leak is bounded and acceptable.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::msg("expected 2-element array")),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        let a: [f64; 3] = Deserialize::from_value(&[1.0, 2.0, 3.0].to_value()).unwrap();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        let o: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn int_float_coercion() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u32::from_value(&Value::Float(3.5)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn btreemap_round_trips() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back: std::collections::BTreeMap<String, u64> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn get_field_reports_missing() {
        let fields = vec![("a".to_string(), Value::Int(1))];
        assert!(get_field(&fields, "a").is_ok());
        assert!(get_field(&fields, "b").is_err());
    }
}
