//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free guard API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoning is
//! unwrapped internally: a poisoned lock here means a test already
//! panicked, and propagating the data is the same behavior parking_lot
//! itself has (it does not poison).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with non-poisoning guard accessors.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
