//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free guard API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoning is
//! unwrapped internally: a poisoned lock here means a test already
//! panicked, and propagating the data is the same behavior parking_lot
//! itself has (it does not poison).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
use std::time::Duration;

/// Reader-writer lock with non-poisoning guard accessors.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`].
///
/// API deviation from real parking_lot: because the stand-in [`Mutex`]
/// hands out `std::sync` guards, `wait`/`wait_timeout` consume and
/// return the guard (std style) instead of taking `&mut guard`.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Blocks until notified, releasing `guard` while waiting. Spurious
    /// wakeups are possible; callers must re-check their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// [`Condvar::wait`] with a timeout; the `bool` is true when the wait
    /// timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, dur) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }

    #[test]
    fn condvar_notifies_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let g = lock.lock();
        let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(timed_out);
    }
}
