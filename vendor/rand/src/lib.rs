//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer/float ranges, and `Rng::gen_bool`. The generator is
//! a splitmix64 stream — deterministic for a given seed, which is all the
//! workspace requires (seeded jitter, seeded test case generation).

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation over ranges.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(2..6);
            assert!((2..6).contains(&i));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
            let f = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
            let v = rng.gen_range(1u32..=8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.65)).count();
        assert!((6000..7000).contains(&hits), "hits {hits}");
    }
}
