//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `Just`, and the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its generated inputs and stops;
//! - generation is seeded deterministically per test function, so runs
//!   are reproducible without a persistence file.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` = number of generated inputs per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Result type threaded through generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: Debug + Clone + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Debug + Clone + 'static,
        F: Fn(Self::Value) -> O + Clone + 'static,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f`
    /// wraps an inner strategy into one more level of structure. `depth`
    /// bounds the nesting; the size hints are accepted for signature
    /// compatibility and unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            // At each level, mix leaves back in so generated trees vary
            // in depth rather than always bottoming out at `depth`.
            let deeper = f(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug + Clone + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone + 'static,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies of the same value type
/// (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug + Clone + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Sub-strategy namespaces (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Element-count specification for [`vec`]: a fixed size or a
        /// (half-open / inclusive) range of sizes.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` values with a size in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Strategy drawing uniformly from a fixed set of options.
        pub fn select<T: Debug + Clone + 'static>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select {
                options: Rc::new(options),
            }
        }

        /// Strategy produced by [`select`].
        #[derive(Debug)]
        pub struct Select<T> {
            options: Rc<Vec<T>>,
        }

        impl<T> Clone for Select<T> {
            fn clone(&self) -> Self {
                Select {
                    options: Rc::clone(&self.options),
                }
            }
        }

        impl<T: Debug + Clone + 'static> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.gen_range(0..self.options.len());
                self.options[i].clone()
            }
        }
    }
}

/// Runs one property test: generates `config.cases` inputs and applies
/// `run` to each. Engine behind the `proptest!` macro.
pub fn run_property_test<F>(config: &ProptestConfig, seed: u64, run: F)
where
    F: Fn(&mut TestRng, u32) -> TestCaseResult,
{
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejected = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        match run(&mut rng, case) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(16).max(1024),
                    "too many prop_assume! rejections ({rejected}) — strategy too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed at case {case}: {msg}");
            }
        }
    }
}

/// Hashes a test-function name into a per-test RNG seed, so different
/// tests explore different (but reproducible) input streams.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Common imports for property tests.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property-test functions. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` (the attribute is written by the caller inside the
/// macro, as in real proptest) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $strategy;)+
                let strategies = ($(&$arg,)+);
                $crate::run_property_test(&config, seed, |rng, _case| {
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = &strategies;
                    $(let $arg = $crate::Strategy::generate(*$arg, rng);)+
                    let debug_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Err($crate::TestCaseError::Fail(msg)) => Err($crate::TestCaseError::Fail(
                            format!("{msg}\n  inputs: {debug_inputs}"),
                        )),
                        other => other,
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(
            a in 1u32..=8,
            b in -3.0f64..3.0,
            v in prop::collection::vec(0usize..5, 1..10),
        ) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!((-3.0..3.0).contains(&b), "b = {b}");
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)],
        ) {
            prop_assert!(x == 1 || x == 2 || (20..40).contains(&x));
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 10);
                    0
                }
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 48, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = super::TestRng::seed_from_u64(5);
        use rand::SeedableRng;
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            if matches!(t, T::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
