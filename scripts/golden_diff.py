#!/usr/bin/env python3
"""Compare two result JSON files, ignoring wall-clock-only fields.

Usage: golden_diff.py <committed.json> <regenerated.json>
       golden_diff.py --trend [<committed-history.jsonl>] <candidate.jsonl>

Exits 0 when the files agree on every deterministic field, 1 on drift
(with a short report of the first differences). Timing fields vary run
to run on shared hardware, so they are stripped recursively before the
comparison; everything else — plans, configs-evaluated counts, symbolic
program sizes, memory predictions — must match exactly.

Throughput fields are an exception to the "timing varies" rule: they
are excluded from exact equality, but a regenerated throughput more
than 10% below the committed baseline fails the check — the committed
bench_symbolic.json doubles as the performance baseline for the fused
and specialized evaluation engines.

--trend validates the last line of a candidate history JSONL file: the
planner daemon's warm-start query must be strictly faster than its
cold query on the GPT-3 6.7B workload — the whole point of
warm-starting is doing less work, so a warm query that is not faster
is a regression even if its result is byte-identical. When a committed
history file is also given, the candidate's `tune_gpt3_6_7b_configs`
must not exceed the last committed entry's: monotonicity-licensed
pruning and warm-starting only ever shrink the enumerated space, so a
configs-evaluated count that grows is a pruning regression. The
candidate's `compiled_rows_per_sec` must also stay within 10% of the
last committed entry's (skipped when the committed history predates
the compiled backend and lacks the field).
"""

import json
import sys

# Fields whose values are wall-clock measurements (or derived from
# them) or pool-scheduling stats. Everything else in the goldens is
# deterministic.
TIMING_FIELDS = {
    # The explain digest keeps every wall-clock-derived value (phase
    # timers, span totals, the self-time tree) under this one key so the
    # whole subtree strips in one go.
    "timing",
    # Planner-daemon responses keep every run-variable field — query
    # timing, cold/hit/warm provenance, configs evaluated, cache
    # counters, telemetry — under this one key; the `result` subtree
    # must then be byte-identical across cold, hit and warm answers.
    "work",
    "tuning_secs",
    "tuning_seconds",
    "elapsed_secs",
    "intra_secs",
    "inter_secs",
    "tuner.elapsed_secs",
    "tuner.intra_secs",
    "tuner.inter_secs",
    "pool.workers",
    "pool.tasks_stolen",
    "pool.tasks_executed",
    "separate_tapes_ns_per_batch",
    "fused_program_ns_per_batch",
    "fused_speedup",
    "fused_rows_per_sec",
    "specialized_ns_per_batch",
    "specialized_speedup",
    "specialized_rows_per_sec",
    "compiled_ns_per_batch",
    "compiled_speedup",
    "compiled_rows_per_sec",
}

# Rows/sec fields gated against regression: the regenerated value may
# wobble run to run, but must stay within 10% of the committed baseline.
THROUGHPUT_FIELDS = (
    "fused_rows_per_sec",
    "specialized_rows_per_sec",
    "compiled_rows_per_sec",
)
THROUGHPUT_TOLERANCE = 0.9


def strip(value):
    if isinstance(value, dict):
        return {
            k: strip(v) for k, v in value.items() if k not in TIMING_FIELDS
        }
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def diff(path, a, b, out):
    if len(out) >= 10:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in regenerated")
            elif k not in b:
                out.append(f"{path}.{k}: only in committed")
            else:
                diff(f"{path}.{k}", a[k], b[k], out)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(f"{path}[{i}]", x, y, out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def check_throughput(committed, regenerated):
    """Regenerated throughput must stay within tolerance of committed."""
    regressions = []
    for field in THROUGHPUT_FIELDS:
        base, fresh = committed.get(field), regenerated.get(field)
        if base is None or fresh is None:
            continue
        if fresh < THROUGHPUT_TOLERANCE * base:
            regressions.append(
                f"{field}: {fresh:.0f} rows/sec is "
                f"{100.0 * (1.0 - fresh / base):.1f}% below the committed "
                f"baseline {base:.0f}"
            )
    return regressions


def last_entry(path):
    with open(path) as f:
        lines = [line for line in f if line.strip()]
    return json.loads(lines[-1]) if lines else None


def check_trend(path, baseline_path=None):
    """Warm-start queries must beat cold queries on the last entry, and
    configs-evaluated must not regress upward vs the committed history."""
    entry = last_entry(path)
    if entry is None:
        print(f"trend check: {path} is empty", file=sys.stderr)
        return 1
    cold = entry.get("query_cold_secs")
    warm = entry.get("query_warm_secs")
    if cold is None or warm is None:
        print(
            f"trend check: last entry of {path} lacks "
            "query_cold_secs/query_warm_secs",
            file=sys.stderr,
        )
        return 1
    if warm >= cold:
        print(
            f"trend check: warm-start query ({warm:.3f}s) is not faster "
            f"than the cold query ({cold:.3f}s) — warm-starting must "
            "strictly reduce work",
            file=sys.stderr,
        )
        return 1
    print(
        f"    trend ok: warm {warm:.3f}s < cold {cold:.3f}s "
        f"({100.0 * (1.0 - warm / cold):.1f}% faster)"
    )
    if baseline_path is not None:
        try:
            baseline = last_entry(baseline_path)
        except FileNotFoundError:
            baseline = None
        base = baseline.get("tune_gpt3_6_7b_configs") if baseline else None
        fresh = entry.get("tune_gpt3_6_7b_configs")
        if base is not None and fresh is not None:
            if fresh > base:
                print(
                    f"trend check: configs_evaluated grew from {base} to "
                    f"{fresh} — pruning/warm-start coverage regressed",
                    file=sys.stderr,
                )
                return 1
            print(
                f"    trend ok: configs_evaluated {fresh} <= committed "
                f"baseline {base}"
            )
        base_rps = (
            baseline.get("compiled_rows_per_sec") if baseline else None
        )
        fresh_rps = entry.get("compiled_rows_per_sec")
        if base_rps is not None and fresh_rps is not None:
            if fresh_rps < THROUGHPUT_TOLERANCE * base_rps:
                print(
                    f"trend check: compiled_rows_per_sec {fresh_rps:.0f} is "
                    f"{100.0 * (1.0 - fresh_rps / base_rps):.1f}% below the "
                    f"committed baseline {base_rps:.0f} — the compiled "
                    "backend's throughput regressed",
                    file=sys.stderr,
                )
                return 1
            print(
                f"    trend ok: compiled {fresh_rps:.0f} rows/sec within "
                f"10% of committed baseline {base_rps:.0f}"
            )
    return 0


def main():
    if sys.argv[1] == "--trend":
        if len(sys.argv) > 3:
            return check_trend(sys.argv[3], baseline_path=sys.argv[2])
        return check_trend(sys.argv[2])
    committed, regenerated = sys.argv[1], sys.argv[2]
    with open(committed) as f:
        a_raw = json.load(f)
    with open(regenerated) as f:
        b_raw = json.load(f)
    a, b = strip(a_raw), strip(b_raw)
    failed = False
    if a != b:
        out = []
        diff("$", a, b, out)
        print(f"golden drift: {committed} vs {regenerated}", file=sys.stderr)
        for line in out:
            print(f"  {line}", file=sys.stderr)
        failed = True
    if isinstance(a_raw, dict) and isinstance(b_raw, dict):
        regressions = check_throughput(a_raw, b_raw)
        if regressions:
            print(
                f"throughput regression: {committed} vs {regenerated}",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
