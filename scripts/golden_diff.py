#!/usr/bin/env python3
"""Compare two result JSON files, ignoring wall-clock-only fields.

Usage: golden_diff.py <committed.json> <regenerated.json>

Exits 0 when the files agree on every deterministic field, 1 on drift
(with a short report of the first differences). Timing fields vary run
to run on shared hardware, so they are stripped recursively before the
comparison; everything else — plans, configs-evaluated counts, symbolic
program sizes, memory predictions — must match exactly.

Throughput fields are an exception to the "timing varies" rule: they
are excluded from exact equality, but a regenerated throughput more
than 10% below the committed baseline fails the check — the committed
bench_symbolic.json doubles as the performance baseline for the fused
and specialized evaluation engines.
"""

import json
import sys

# Fields whose values are wall-clock measurements (or derived from
# them) or pool-scheduling stats. Everything else in the goldens is
# deterministic.
TIMING_FIELDS = {
    # The explain digest keeps every wall-clock-derived value (phase
    # timers, span totals, the self-time tree) under this one key so the
    # whole subtree strips in one go.
    "timing",
    "tuning_secs",
    "elapsed_secs",
    "intra_secs",
    "inter_secs",
    "tuner.elapsed_secs",
    "tuner.intra_secs",
    "tuner.inter_secs",
    "pool.workers",
    "pool.tasks_stolen",
    "pool.tasks_executed",
    "separate_tapes_ns_per_batch",
    "fused_program_ns_per_batch",
    "fused_speedup",
    "fused_rows_per_sec",
    "specialized_ns_per_batch",
    "specialized_speedup",
    "specialized_rows_per_sec",
}

# Rows/sec fields gated against regression: the regenerated value may
# wobble run to run, but must stay within 10% of the committed baseline.
THROUGHPUT_FIELDS = ("fused_rows_per_sec", "specialized_rows_per_sec")
THROUGHPUT_TOLERANCE = 0.9


def strip(value):
    if isinstance(value, dict):
        return {
            k: strip(v) for k, v in value.items() if k not in TIMING_FIELDS
        }
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def diff(path, a, b, out):
    if len(out) >= 10:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in regenerated")
            elif k not in b:
                out.append(f"{path}.{k}: only in committed")
            else:
                diff(f"{path}.{k}", a[k], b[k], out)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(f"{path}[{i}]", x, y, out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def check_throughput(committed, regenerated):
    """Regenerated throughput must stay within tolerance of committed."""
    regressions = []
    for field in THROUGHPUT_FIELDS:
        base, fresh = committed.get(field), regenerated.get(field)
        if base is None or fresh is None:
            continue
        if fresh < THROUGHPUT_TOLERANCE * base:
            regressions.append(
                f"{field}: {fresh:.0f} rows/sec is "
                f"{100.0 * (1.0 - fresh / base):.1f}% below the committed "
                f"baseline {base:.0f}"
            )
    return regressions


def main():
    committed, regenerated = sys.argv[1], sys.argv[2]
    with open(committed) as f:
        a_raw = json.load(f)
    with open(regenerated) as f:
        b_raw = json.load(f)
    a, b = strip(a_raw), strip(b_raw)
    failed = False
    if a != b:
        out = []
        diff("$", a, b, out)
        print(f"golden drift: {committed} vs {regenerated}", file=sys.stderr)
        for line in out:
            print(f"  {line}", file=sys.stderr)
        failed = True
    if isinstance(a_raw, dict) and isinstance(b_raw, dict):
        regressions = check_throughput(a_raw, b_raw)
        if regressions:
            print(
                f"throughput regression: {committed} vs {regenerated}",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
