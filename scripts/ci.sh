#!/usr/bin/env bash
# Offline CI gate for the Mist workspace. Runs entirely from the repo
# checkout — no network, no extra tools beyond the Rust toolchain and
# python3. GitHub Actions (.github/workflows/ci.yml) invokes this same
# script, so a local `scripts/ci.sh` run reproduces CI exactly.
#
# Stages:
#   1. cargo build --release
#   2. cargo test -q              (workspace tests, quiet)
#   3. cargo clippy -D warnings   (whole workspace, incl. vendor)
#   4. cargo fmt --check          (first-party packages only; rustfmt's
#      `ignore` option is nightly-only so vendor/ is excluded by listing
#      packages explicitly)
#   5. golden drift: regenerate the two cheap committed result files and
#      fail if any deterministic field changed (wall-clock-only fields
#      are ignored) or if fused/specialized evaluation throughput drops
#      more than 10% below the committed bench_symbolic.json baseline
#      (see scripts/golden_diff.py)
#   6. IR lint: run the mist-irlint static analyzer over the fused stage
#      programs of every model preset, plus the per-sweep specialized
#      residuals at the corner (zero, offload) groups; any
#      error-severity diagnostic (unit mismatch, reachable division by
#      zero, a cost root not provably finite and non-negative) fails
#      the gate

set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (everything except vendor/ stand-ins).
FMT_PACKAGES=(
    mist mist-baselines mist-bench mist-examples mist-graph mist-hardware
    mist-integration-tests mist-interference mist-irlint mist-milp
    mist-models mist-pool mist-schedule mist-sim mist-symbolic
    mist-telemetry mist-tuner
)

echo "==> [1/6] cargo build --release"
cargo build --release

echo "==> [2/6] cargo test -q"
cargo test -q

echo "==> [3/6] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/6] cargo fmt --check (first-party packages)"
fmt_args=()
for p in "${FMT_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done
cargo fmt --check "${fmt_args[@]}"

echo "==> [5/6] golden drift check"
# Regenerating a golden overwrites the committed file in results/, so
# stash the committed versions first and always restore them — the drift
# check must leave the working tree untouched whether it passes or fails.
GOLDENS=(fig02_motivation bench_symbolic)
tmpdir="$(mktemp -d)"
trap 'for g in "${GOLDENS[@]}"; do
          if [ -f "$tmpdir/$g.json" ]; then
              mv "$tmpdir/$g.json" "results/$g.json"
          fi
      done
      rm -rf "$tmpdir"' EXIT

drift=0
for g in "${GOLDENS[@]}"; do
    cp "results/$g.json" "$tmpdir/$g.json"
    # Up to three attempts: deterministic drift fails every attempt, but
    # a throughput dip from scheduler noise on a shared runner gets two
    # more chances to reproduce before the gate calls it a regression.
    ok=0
    for attempt in 1 2 3; do
        "target/release/$g" >/dev/null
        if python3 scripts/golden_diff.py "$tmpdir/$g.json" "results/$g.json"; then
            ok=1
            break
        fi
        echo "    $g.json: attempt $attempt/3 failed, retrying"
    done
    if [ "$ok" -eq 1 ]; then
        echo "    $g.json: no drift"
    else
        drift=1
    fi
done
if [ "$drift" -ne 0 ]; then
    echo "golden drift detected — if the change is intentional, regenerate" >&2
    echo "the files above and commit them with the code change" >&2
    exit 1
fi

echo "==> [6/6] IR lint (mist-irlint over every preset's stage programs)"
target/release/mist-cli lint-ir

echo "CI gate passed."
