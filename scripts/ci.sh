#!/usr/bin/env bash
# Offline CI gate for the Mist workspace. Runs entirely from the repo
# checkout — no network, no extra tools beyond the Rust toolchain and
# python3. GitHub Actions (.github/workflows/ci.yml) invokes this same
# script, so a local `scripts/ci.sh` run reproduces CI exactly.
#
# Stages:
#   1. cargo build --release
#   2. cargo test -q              (workspace tests, quiet)
#   3. cargo clippy -D warnings   (whole workspace, incl. vendor)
#   4. cargo fmt --check          (first-party packages only; rustfmt's
#      `ignore` option is nightly-only so vendor/ is excluded by listing
#      packages explicitly)
#   5. golden drift: regenerate the two cheap committed result files and
#      fail if any deterministic field changed (wall-clock-only fields
#      are ignored) or if fused/specialized evaluation throughput drops
#      more than 10% below the committed bench_symbolic.json baseline
#      (see scripts/golden_diff.py)
#   6. provenance digest drift: tune GPT-3 6.7B with --journal, run
#      `mist-cli explain --json` over the decision journal, and compare
#      against the committed results/explain_gpt3_6_7b.json snapshot
#      (the `timing` subtree is stripped; everything else — coverage
#      accounting, rejection histogram, runner-ups, frontier digests —
#      is deterministic at any thread count)
#   7. IR lint: run the mist-irlint static analyzer over the fused stage
#      programs of every model preset, plus the per-sweep specialized
#      residuals at the corner (zero, offload) groups; any
#      error-severity diagnostic (unit mismatch, reachable division by
#      zero, a cost root not provably finite and non-negative) fails
#      the gate
#   8. history: append this run's fused/specialized evaluation
#      throughput and the 6.7B tuning time to results/history.jsonl so
#      perf trends are visible across commits (append-only; commit the
#      new line with your change)

set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (everything except vendor/ stand-ins).
FMT_PACKAGES=(
    mist mist-baselines mist-bench mist-examples mist-graph mist-hardware
    mist-integration-tests mist-interference mist-irlint mist-milp
    mist-models mist-pool mist-schedule mist-sim mist-symbolic
    mist-telemetry mist-tuner
)

echo "==> [1/8] cargo build --release"
cargo build --release

echo "==> [2/8] cargo test -q"
cargo test -q

echo "==> [3/8] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/8] cargo fmt --check (first-party packages)"
fmt_args=()
for p in "${FMT_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done
cargo fmt --check "${fmt_args[@]}"

echo "==> [5/8] golden drift check"
# Regenerating a golden overwrites the committed file in results/, so
# stash the committed versions first and always restore them — the drift
# check must leave the working tree untouched whether it passes or fails.
GOLDENS=(fig02_motivation bench_symbolic)
tmpdir="$(mktemp -d)"
trap 'for g in "${GOLDENS[@]}"; do
          if [ -f "$tmpdir/$g.json" ]; then
              mv "$tmpdir/$g.json" "results/$g.json"
          fi
      done
      rm -rf "$tmpdir"' EXIT

drift=0
for g in "${GOLDENS[@]}"; do
    cp "results/$g.json" "$tmpdir/$g.json"
    # Up to three attempts: deterministic drift fails every attempt, but
    # a throughput dip from scheduler noise on a shared runner gets two
    # more chances to reproduce before the gate calls it a regression.
    ok=0
    for attempt in 1 2 3; do
        "target/release/$g" >/dev/null
        if python3 scripts/golden_diff.py "$tmpdir/$g.json" "results/$g.json"; then
            ok=1
            break
        fi
        echo "    $g.json: attempt $attempt/3 failed, retrying"
    done
    if [ "$ok" -eq 1 ]; then
        echo "    $g.json: no drift"
    else
        drift=1
    fi
done
if [ "$drift" -ne 0 ]; then
    echo "golden drift detected — if the change is intentional, regenerate" >&2
    echo "the files above and commit them with the code change" >&2
    exit 1
fi

echo "==> [6/8] provenance digest drift (mist-cli explain --json)"
# Same workload as the committed snapshot; --threads 2 exercises the
# cross-thread canonical ordering of the digest. Wall-clock lives under
# the digest's `timing` key, which golden_diff.py strips.
target/release/mist-cli tune --model gpt3-6.7b --platform l4 --gpus 8 \
    --batch 16 --seed 7 --threads 2 --json \
    --journal "$tmpdir/explain_journal.jsonl" > "$tmpdir/tune_6_7b.json"
target/release/mist-cli explain --json "$tmpdir/explain_journal.jsonl" \
    > "$tmpdir/explain_gpt3_6_7b.json"
if python3 scripts/golden_diff.py results/explain_gpt3_6_7b.json \
        "$tmpdir/explain_gpt3_6_7b.json"; then
    echo "    explain_gpt3_6_7b.json: no drift"
else
    echo "provenance digest drift — if intentional, regenerate" >&2
    echo "results/explain_gpt3_6_7b.json and commit it with the change" >&2
    exit 1
fi

echo "==> [7/8] IR lint (mist-irlint over every preset's stage programs)"
target/release/mist-cli lint-ir

echo "==> [8/8] append run metrics to results/history.jsonl"
# results/bench_symbolic.json currently holds the freshly regenerated
# copy from stage 5 (the committed bytes are restored from $tmpdir at
# exit), so its throughput numbers describe THIS machine and run.
python3 - "$tmpdir/tune_6_7b.json" <<'PY'
import json, subprocess, sys, time

with open("results/bench_symbolic.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    tune = json.load(f)
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
except Exception:
    commit = "unknown"
entry = {
    "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "commit": commit,
    "fused_rows_per_sec": bench.get("fused_rows_per_sec"),
    "specialized_rows_per_sec": bench.get("specialized_rows_per_sec"),
    "tune_gpt3_6_7b_secs": tune.get("tuning_seconds"),
    "tune_gpt3_6_7b_configs": tune.get("configs_evaluated"),
}
with open("results/history.jsonl", "a") as f:
    f.write(json.dumps(entry) + "\n")
print("    appended:", json.dumps(entry))
PY

echo "CI gate passed."
