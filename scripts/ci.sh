#!/usr/bin/env bash
# Offline CI gate for the Mist workspace. Runs entirely from the repo
# checkout — no network, no extra tools beyond the Rust toolchain and
# python3. GitHub Actions (.github/workflows/ci.yml) invokes this same
# script, so a local `scripts/ci.sh` run reproduces CI exactly.
#
# Stages:
#   1. cargo build --release
#   2. cargo test -q              (workspace tests, quiet)
#   3. cargo clippy -D warnings   (whole workspace, incl. vendor)
#   4. cargo fmt --check          (first-party packages only; rustfmt's
#      `ignore` option is nightly-only so vendor/ is excluded by listing
#      packages explicitly)
#   5. golden drift: regenerate the two cheap committed result files and
#      fail if any deterministic field changed (wall-clock-only fields
#      are ignored) or if fused/specialized/compiled evaluation
#      throughput drops more than 10% below the committed
#      bench_symbolic.json baseline (see scripts/golden_diff.py)
#   6. provenance digest drift: tune GPT-3 6.7B with --journal, run
#      `mist-cli explain --json` over the decision journal, and compare
#      against the committed results/explain_gpt3_6_7b.json snapshot
#      (the `timing` subtree is stripped; everything else — coverage
#      accounting, rejection histogram, runner-ups, frontier digests —
#      is deterministic at any thread count)
#   7. IR lint: run the mist-irlint static analyzer over the fused stage
#      programs of every model preset, plus the per-sweep specialized
#      residuals at the corner (zero, offload) groups; any
#      error-severity diagnostic (unit mismatch, reachable division by
#      zero, a cost root not provably finite and non-negative) fails
#      the gate
#   8. plan certificates: `mist-cli verify-plan` tunes every one of the
#      18 model presets and independently re-derives each chosen plan's
#      memory and cost roots through the mist-irlint interval engine;
#      any plan whose recorded numbers escape the derived bounds, whose
#      peak memory is not proven under budget, or whose re-derived
#      certificate differs from the one embedded in the outcome fails
#      the gate
#   9. planner daemon: start `mist-cli serve` on a Unix socket and drive
#      the GPT-3 6.7B workload through cold → exact-hit → warm-start
#      queries; the hit and warm responses must be byte-identical to
#      the cold one once the run-variable `work` subtree is stripped
#      (scripts/golden_diff.py), the warm query must evaluate strictly
#      fewer configs, and the daemon must shut down cleanly (the EXIT
#      trap kills it if the stage fails first); responses and daemon
#      logs land in artifacts/daemon/
#  10. history: append this run's fused/specialized/compiled evaluation
#      throughput, the 6.7B tuning time and configs-evaluated count,
#      and the daemon's cold/hit/warm query timings to
#      results/history.jsonl so perf trends are visible across commits
#      (append-only; commit the new line with your change). Runs last,
#      after every gate has passed, so only green runs are recorded;
#      the candidate entry must also pass `golden_diff.py --trend`
#      (warm strictly faster than cold, configs_evaluated no higher
#      than the committed baseline) before it is appended.

set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (everything except vendor/ stand-ins).
FMT_PACKAGES=(
    mist mist-baselines mist-bench mist-examples mist-graph mist-hardware
    mist-integration-tests mist-interference mist-irlint mist-milp
    mist-models mist-pool mist-schedule mist-service mist-sim
    mist-symbolic mist-telemetry mist-tuner
)

echo "==> [1/10] cargo build --release"
cargo build --release

echo "==> [2/10] cargo test -q"
cargo test -q

echo "==> [3/10] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/10] cargo fmt --check (first-party packages)"
fmt_args=()
for p in "${FMT_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done
cargo fmt --check "${fmt_args[@]}"

echo "==> [5/10] golden drift check"
# Regenerating a golden overwrites the committed file in results/, so
# stash the committed versions first and always restore them — the drift
# check must leave the working tree untouched whether it passes or fails.
# The same trap also kills the stage-8 planner daemon if the gate fails
# while it is running, so no orphaned process survives a red run.
GOLDENS=(fig02_motivation bench_symbolic)
tmpdir="$(mktemp -d)"
DAEMON_PID=""
trap 'if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
          kill "$DAEMON_PID" 2>/dev/null || true
          wait "$DAEMON_PID" 2>/dev/null || true
      fi
      for g in "${GOLDENS[@]}"; do
          if [ -f "$tmpdir/$g.json" ]; then
              mv "$tmpdir/$g.json" "results/$g.json"
          fi
      done
      rm -rf "$tmpdir"' EXIT

drift=0
for g in "${GOLDENS[@]}"; do
    cp "results/$g.json" "$tmpdir/$g.json"
    # Up to three attempts: deterministic drift fails every attempt, but
    # a throughput dip from scheduler noise on a shared runner gets two
    # more chances to reproduce before the gate calls it a regression.
    ok=0
    for attempt in 1 2 3; do
        "target/release/$g" >/dev/null
        if python3 scripts/golden_diff.py "$tmpdir/$g.json" "results/$g.json"; then
            ok=1
            break
        fi
        echo "    $g.json: attempt $attempt/3 failed, retrying"
    done
    if [ "$ok" -eq 1 ]; then
        echo "    $g.json: no drift"
    else
        drift=1
    fi
done
if [ "$drift" -ne 0 ]; then
    echo "golden drift detected — if the change is intentional, regenerate" >&2
    echo "the files above and commit them with the code change" >&2
    exit 1
fi

echo "==> [6/10] provenance digest drift (mist-cli explain --json)"
# Same workload as the committed snapshot; --threads 2 exercises the
# cross-thread canonical ordering of the digest. Wall-clock lives under
# the digest's `timing` key, which golden_diff.py strips.
target/release/mist-cli tune --model gpt3-6.7b --platform l4 --gpus 8 \
    --batch 16 --seed 7 --threads 2 --json \
    --journal "$tmpdir/explain_journal.jsonl" > "$tmpdir/tune_6_7b.json"
target/release/mist-cli explain --json "$tmpdir/explain_journal.jsonl" \
    > "$tmpdir/explain_gpt3_6_7b.json"
if python3 scripts/golden_diff.py results/explain_gpt3_6_7b.json \
        "$tmpdir/explain_gpt3_6_7b.json"; then
    echo "    explain_gpt3_6_7b.json: no drift"
else
    echo "provenance digest drift — if intentional, regenerate" >&2
    echo "results/explain_gpt3_6_7b.json and commit it with the change" >&2
    exit 1
fi

echo "==> [7/10] IR lint (mist-irlint over every preset's stage programs)"
target/release/mist-cli lint-ir

echo "==> [8/10] plan certificates (mist-cli verify-plan, all 18 presets)"
# Tunes each preset at the stage-8 defaults and re-derives the chosen
# plan through the interval engine; exits 1 on any certificate failure.
target/release/mist-cli verify-plan --gpus 4 --batch 8 --max-grad-accum 4

echo "==> [9/10] planner daemon (cold → exact-hit → warm-start)"
mkdir -p "$tmpdir/daemon" artifacts/daemon
DAEMON_SOCK="$tmpdir/planner.sock"
target/release/mist-cli serve --listen "$DAEMON_SOCK" \
    --cache "$tmpdir/plans.jsonl" --threads 2 \
    > "$tmpdir/daemon/daemon_stdout.log" 2> "$tmpdir/daemon/daemon_stderr.log" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    grep -q '^READY ' "$tmpdir/daemon/daemon_stdout.log" 2>/dev/null && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "planner daemon died during startup:" >&2
        cat "$tmpdir/daemon/daemon_stderr.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '^READY ' "$tmpdir/daemon/daemon_stdout.log" \
    || { echo "planner daemon did not become ready" >&2; exit 1; }

# The stage-6 workload, queried four ways. Responses are copied to
# artifacts/daemon/ before the assertions so a red run still uploads
# its evidence.
daemon_query() { # daemon_query <outfile> <batch> [extra flags...]
    local out="$1" batch="$2"
    shift 2
    target/release/mist-cli query --connect "$DAEMON_SOCK" \
        --model gpt3-6.7b --platform l4 --gpus 8 --batch "$batch" \
        --seed 7 "$@" > "$tmpdir/daemon/$out"
}
daemon_query cold16.json 16
daemon_query hit16.json 16
daemon_query warm32.json 32
daemon_query cold32.json 32 --no-cache
cp "$tmpdir/daemon/"*.json artifacts/daemon/

# Byte-identity once the run-variable `work` subtree is stripped: the
# exact hit must reproduce the cold answer, and the warm-started tune
# must reproduce an independent cold tune.
python3 scripts/golden_diff.py "$tmpdir/daemon/cold16.json" "$tmpdir/daemon/hit16.json"
python3 scripts/golden_diff.py "$tmpdir/daemon/cold32.json" "$tmpdir/daemon/warm32.json"

# Provenance and work accounting: sources, strictly fewer configs on
# the warm path, and the daemon's own cache counters.
python3 - "$tmpdir/daemon" <<'PY'
import json, sys

d = sys.argv[1]
def load(name):
    with open(f"{d}/{name}.json") as f:
        return json.load(f)

cold16, hit16 = load("cold16"), load("hit16")
warm32, cold32 = load("warm32"), load("cold32")
for name, resp, source in [
    ("cold16", cold16, "cold"),
    ("hit16", hit16, "hit"),
    ("warm32", warm32, "warm"),
    ("cold32", cold32, "cold"),
]:
    got = resp["work"]["source"]
    assert got == source, f"{name}: expected source={source}, got {got}"
warm_configs = warm32["work"]["configs_evaluated"]
cold_configs = cold32["work"]["configs_evaluated"]
assert warm_configs < cold_configs, (
    f"warm-start must evaluate strictly fewer configs: "
    f"{warm_configs} vs {cold_configs}"
)
assert warm32["work"]["seeded_frontiers"] > 0, "warm run must seed frontiers"
counters = cold32["work"]["cache"]
assert counters["hits"] == 1, counters
assert counters["warm_starts"] == 1, counters
print(
    f"    daemon ok: warm evaluated {warm_configs} configs "
    f"vs {cold_configs} cold "
    f"({100.0 * (1.0 - warm_configs / cold_configs):.1f}% fewer)"
)
PY

# Clean shutdown through the protocol; the trap covers failure paths.
target/release/mist-cli query --connect "$DAEMON_SOCK" --shutdown >/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
cp "$tmpdir/daemon/daemon_stdout.log" "$tmpdir/daemon/daemon_stderr.log" artifacts/daemon/
echo "    daemon shut down cleanly; journal in artifacts/daemon/"

echo "==> [10/10] append run metrics to results/history.jsonl"
# Runs last so only fully green runs are recorded.
# results/bench_symbolic.json currently holds the freshly regenerated
# copy from stage 5 (the committed bytes are restored from $tmpdir at
# exit), so its throughput numbers describe THIS machine and run.
python3 - "$tmpdir/tune_6_7b.json" "$tmpdir/daemon" "$tmpdir/history_entry.jsonl" <<'PY'
import json, subprocess, sys, time

with open("results/bench_symbolic.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    tune = json.load(f)
daemon = sys.argv[2]
def query_secs(name):
    with open(f"{daemon}/{name}.json") as f:
        return json.load(f)["work"]["query_secs"]
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
except Exception:
    commit = "unknown"
entry = {
    "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "commit": commit,
    "fused_rows_per_sec": bench.get("fused_rows_per_sec"),
    "specialized_rows_per_sec": bench.get("specialized_rows_per_sec"),
    "compiled_rows_per_sec": bench.get("compiled_rows_per_sec"),
    "tune_gpt3_6_7b_secs": tune.get("tuning_seconds"),
    "tune_gpt3_6_7b_configs": tune.get("configs_evaluated"),
    "query_cold_secs": query_secs("cold32"),
    "query_warm_secs": query_secs("warm32"),
    "query_hit_secs": query_secs("hit16"),
}
with open(sys.argv[3], "w") as f:
    f.write(json.dumps(entry) + "\n")
print("    candidate:", json.dumps(entry))
PY
# The candidate entry must pass the trend checks (warm strictly faster
# than cold; configs-evaluated no higher than the committed baseline)
# before it becomes part of the recorded history.
python3 scripts/golden_diff.py --trend results/history.jsonl \
    "$tmpdir/history_entry.jsonl"
cat "$tmpdir/history_entry.jsonl" >> results/history.jsonl
echo "    appended to results/history.jsonl"

echo "CI gate passed."
