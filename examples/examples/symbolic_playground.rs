//! The symbolic analyzer as an educational tool (paper §A.5): build a
//! stage cost model, print the compiled memory expression's behaviour,
//! and sweep one optimization knob to see the trade-off curves.
//!
//! ```bash
//! cargo run -p mist-examples --example symbolic_playground
//! ```

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{stage_times, StageAnalyzer};
use mist::{
    ClusterSpec, DeviceMesh, GpuSpec, InterferenceModel, OpCostDb, Platform, StageCandidate,
    StageConfigValues, StageRole, GIB,
};

fn main() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
    let db = OpCostDb::new(GpuSpec::l4());
    let analyzer = StageAnalyzer::new(&model, &cluster, &db);
    let interference = InterferenceModel::pcie_defaults();

    // One symbolic analysis pass for the candidate…
    let tapes = analyzer.analyze(&StageCandidate {
        mesh: DeviceMesh::new(1, 4),
        dp: 2,
        tp: 2,
        micro_batch: 2,
        role: StageRole::Only,
    });
    println!(
        "compiled tapes: mem_fwd has {} SSA ops over symbols {:?}\n",
        tapes.mem_fwd.len(),
        tapes.mem_fwd.symbols()
    );

    // …then every configuration is a cheap value substitution.
    println!("sweep: checkpointed layers (all else fixed, ZeRO-1)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "ckpt", "mem (GiB)", "t (ms)", "d (ms)"
    );
    for ckpt in [0u32, 8, 16, 24, 32] {
        let cfg = StageConfigValues {
            layers: 32,
            ckpt,
            zero: 1,
            wo: 0.0,
            go: 0.0,
            oo: 0.0,
            ao: 0.0,
            inflight: 1,
        };
        let p = tapes.eval_point(&cfg);
        let st = stage_times(&p, &interference);
        println!(
            "{ckpt:>6} {:>12.2} {:>12.1} {:>12.1}",
            p.mem_fwd.max(p.mem_bwd) / GIB,
            st.t * 1e3,
            st.d * 1e3
        );
    }

    println!("\nsweep: optimizer-state offloading ratio (full ckpt)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "oo", "mem (GiB)", "t (ms)", "d (ms)"
    );
    for oo in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cfg = StageConfigValues {
            layers: 32,
            ckpt: 32,
            zero: 1,
            wo: 0.0,
            go: 0.0,
            oo,
            ao: 0.0,
            inflight: 1,
        };
        let p = tapes.eval_point(&cfg);
        let st = stage_times(&p, &interference);
        println!(
            "{oo:>6} {:>12.2} {:>12.1} {:>12.1}",
            p.mem_fwd.max(p.mem_bwd) / GIB,
            st.t * 1e3,
            st.d * 1e3
        );
    }
    println!("\nNote how `oo` trades stable-microbatch memory for first/last-microbatch");
    println!("delta `d` — exactly the Pareto dimension Mist's inter-stage MILP samples.");
}
