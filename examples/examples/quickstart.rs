//! Quickstart: tune and "run" a 1.3B GPT-3 model on two L4 GPUs.
//!
//! ```bash
//! cargo run -p mist-examples --example quickstart
//! ```

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{MistSession, Platform};

fn main() {
    // 1. Describe the workload: model, sequence length, attention kernel.
    let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
    println!(
        "model: {} ({:.2}B params)",
        model.name,
        model.total_params() as f64 / 1e9
    );

    // 2. Build a session for the hardware. This calibrates the operator
    //    cost database and fits the interference model from benchmark
    //    samples (paper §5.2.2).
    let session = MistSession::builder(model, Platform::GcpL4, 2).build();

    // 3. Tune: Mist searches parallelism × every memory optimization.
    let global_batch = 16;
    let outcome = session
        .tune(global_batch)
        .expect("workload must be feasible");
    println!("\nchosen plan:");
    println!("  gradient accumulation G = {}", outcome.plan.grad_accum);
    for (i, st) in outcome.plan.stages.iter().enumerate() {
        let c = &st.config;
        println!(
            "  stage {i}: {} layers, dp={} tp={} b={}, ZeRO-{}, ckpt={} \
             offload(wo={} go={} oo={} ao={})",
            c.layers,
            st.candidate.dp,
            st.candidate.tp,
            st.candidate.micro_batch,
            c.zero,
            c.ckpt,
            c.wo,
            c.go,
            c.oo,
            c.ao
        );
    }
    println!(
        "  predicted: {:.3} s/iteration ({:.1} samples/s)",
        outcome.predicted_iteration, outcome.predicted_throughput
    );

    // 4. Execute the plan on the discrete-event cluster simulator.
    let report = session.execute(&outcome);
    println!("\nmeasured (simulated cluster):");
    println!(
        "  {:.3} s/iteration ({:.1} samples/s), bubble fraction {:.1}%",
        report.iteration_time,
        report.throughput(global_batch),
        report.bubble_fraction() * 100.0
    );
    for (i, m) in report.stage_peak_mem.iter().enumerate() {
        println!("  stage {i} peak memory: {:.2} GiB", m / mist::GIB);
    }
}
