//! Render an ASCII Gantt chart of a simulated 1F1B pipeline iteration —
//! makes the fill/steady/drain phases and the first/last microbatch
//! extras visible (paper Figs. 4 and 10).
//!
//! ```bash
//! cargo run -p mist-examples --example pipeline_gantt
//! ```

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::TaskKind;
use mist::{MistSession, Platform};

fn main() {
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    // A two-node cluster: cross-node data parallelism is NIC-bound, so
    // the tuner chooses a real pipeline with visible fill/drain phases.
    let session = MistSession::builder(model, Platform::GcpL4, 16).build();
    let outcome = session.tune(64).expect("plan");
    let report = session.execute(&outcome);
    let s_total = outcome.plan.num_stages();
    println!(
        "plan: G={}, S={s_total}; iteration {:.2}s; bubbles {:.0}%\n",
        outcome.plan.grad_accum,
        report.iteration_time,
        report.bubble_fraction() * 100.0
    );

    const WIDTH: usize = 100;
    let scale = WIDTH as f64 / report.iteration_time;
    for s in 0..s_total {
        let mut lane = vec![' '; WIDTH + 1];
        for r in report.records.iter().filter(|r| r.stage == s) {
            let a = (r.start * scale) as usize;
            let b = ((r.end * scale) as usize).min(WIDTH);
            let ch = match r.kind {
                TaskKind::FirstExtra => '*',
                TaskKind::Forward => char::from_digit(r.microbatch % 10, 10).unwrap_or('F'),
                TaskKind::Backward => 'b',
            };
            for c in lane.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        println!("stage {s}: {}", lane.iter().collect::<String>());
    }
    println!("\nlegend: digits = forward microbatch, b = backward, * = first-microbatch");
    println!("extras (optimizer step & swap-ins running inside the fill bubble)");
}
