//! Compare Mist against the baseline systems on one workload — a
//! miniature of the paper's Figure 11 columns.
//!
//! ```bash
//! cargo run -p mist-examples --example compare_systems
//! ```

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{Baseline, MistSession, Platform};

fn main() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let platform = Platform::GcpL4;
    let gpus = 4;
    let batch = 32;
    println!(
        "workload: {} on {gpus}x L4, global batch {batch}\n",
        model.name
    );
    println!("{:<20} {:>12} {:>14}", "system", "samples/s", "vs Megatron");

    // Baselines pick plans inside their restricted spaces.
    let mut megatron = None;
    let mut rows = Vec::new();
    for b in [Baseline::MegatronLM, Baseline::DeepSpeed, Baseline::Aceso] {
        let session = MistSession::builder(model.clone(), platform, gpus)
            .space(b.space())
            .build();
        let thr = session.tune(batch).map(|o| {
            let rep = session.execute(&o);
            rep.throughput(batch)
        });
        if b == Baseline::MegatronLM {
            megatron = thr;
        }
        rows.push((b.name().to_string(), thr));
    }

    // Mist with the full co-optimization space.
    let session = MistSession::builder(model.clone(), platform, gpus).build();
    let mist = session
        .tune(batch)
        .map(|o| session.execute(&o).throughput(batch));
    rows.push(("Mist".into(), mist));

    for (name, thr) in rows {
        match (thr, megatron) {
            (Some(t), Some(m)) => println!("{name:<20} {t:>12.2} {:>13.2}x", t / m),
            (Some(t), None) => println!("{name:<20} {t:>12.2} {:>14}", "–"),
            _ => println!("{name:<20} {:>12} {:>14}", "OOM", "–"),
        }
    }
}
