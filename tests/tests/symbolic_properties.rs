//! Property-based tests of the symbolic engine's core invariants.

use mist_symbolic::{BatchBindings, CmpOp, Context, EvalWorkspace, SymbolicError, Tape};
use proptest::prelude::*;

/// Binds only the symbols a tape actually reads: `resolve_scalars` is
/// strict and rejects bindings that match no symbol, but generated
/// expressions may collapse away `x` or `y` entirely.
fn eval_filtered(tape: &Tape, bindings: &[(&str, f64)]) -> Result<f64, SymbolicError> {
    let filtered: Vec<(&str, f64)> = bindings
        .iter()
        .copied()
        .filter(|(n, _)| tape.symbols().iter().any(|s| s == n))
        .collect();
    tape.eval(&filtered)
}

/// A tiny expression AST we can generate and mirror both symbolically and
/// concretely.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    K(f64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Ceil(Box<E>),
    Select(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        (-100i32..100).prop_map(|k| E::K(k as f64 / 4.0)),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Ceil(a.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Select(
                c.into(),
                a.into(),
                b.into()
            )),
        ]
    })
}

fn build<'c>(e: &E, ctx: &'c Context) -> mist_symbolic::Expr<'c> {
    match e {
        E::X => ctx.symbol("x"),
        E::Y => ctx.symbol("y"),
        E::K(k) => ctx.constant(*k),
        E::Add(a, b) => build(a, ctx) + build(b, ctx),
        E::Sub(a, b) => build(a, ctx) - build(b, ctx),
        E::Mul(a, b) => build(a, ctx) * build(b, ctx),
        E::Div(a, b) => build(a, ctx) / build(b, ctx),
        E::Min(a, b) => build(a, ctx).min(build(b, ctx)),
        E::Max(a, b) => build(a, ctx).max(build(b, ctx)),
        E::Ceil(a) => build(a, ctx).ceil(),
        E::Select(c, a, b) => {
            let cond = ctx.cmp(CmpOp::Gt, build(c, ctx), ctx.constant(0.0));
            ctx.select(cond, build(a, ctx), build(b, ctx))
        }
    }
}

fn reference(e: &E, x: f64, y: f64) -> f64 {
    match e {
        E::X => x,
        E::Y => y,
        E::K(k) => *k,
        E::Add(a, b) => reference(a, x, y) + reference(b, x, y),
        E::Sub(a, b) => reference(a, x, y) - reference(b, x, y),
        E::Mul(a, b) => reference(a, x, y) * reference(b, x, y),
        E::Div(a, b) => reference(a, x, y) / reference(b, x, y),
        E::Min(a, b) => reference(a, x, y).min(reference(b, x, y)),
        E::Max(a, b) => reference(a, x, y).max(reference(b, x, y)),
        E::Ceil(a) => reference(a, x, y).ceil(),
        E::Select(c, a, b) => {
            if reference(c, x, y) > 0.0 {
                reference(a, x, y)
            } else {
                reference(b, x, y)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simplifying builders + compiled tape agree with a direct
    /// reference interpreter.
    #[test]
    fn tape_matches_reference(
        e in arb_expr(),
        x in -8.0f64..8.0,
        y in -8.0f64..8.0,
    ) {
        let ctx = Context::new();
        let expr = build(&e, &ctx);
        let tape = ctx.compile(expr);
        let got = eval_filtered(&tape, &[("x", x), ("y", y)]).unwrap();
        let want = reference(&e, x, y);
        // Symbolic simplification may reassociate sums/products, so allow
        // an fp tolerance proportional to magnitude.
        let tol = 1e-9 * (1.0 + want.abs());
        prop_assert!((got - want).abs() <= tol, "got {got}, want {want}");
    }

    /// Batched evaluation equals scalar evaluation row by row.
    #[test]
    fn batch_rows_match_scalar(
        e in arb_expr(),
        xs in prop::collection::vec(-8.0f64..8.0, 1..20),
    ) {
        let ctx = Context::new();
        let expr = build(&e, &ctx);
        let tape = ctx.compile(expr);
        let ys: Vec<f64> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut batch = BatchBindings::new(xs.len());
        batch.set_values("x", xs.clone());
        batch.set_values("y", ys.clone());
        let out = tape.eval_batch(&batch).unwrap();
        for (i, o) in out.iter().enumerate() {
            let scalar = eval_filtered(&tape, &[("x", xs[i]), ("y", ys[i])]).unwrap();
            prop_assert!((o - scalar).abs() <= 1e-12 * (1.0 + scalar.abs()));
        }
    }

    /// Hash-consing: building the same expression twice allocates no new
    /// nodes.
    #[test]
    fn interning_is_idempotent(e in arb_expr()) {
        let ctx = Context::new();
        let e1 = build(&e, &ctx);
        let n = ctx.node_count();
        let e2 = build(&e, &ctx);
        prop_assert_eq!(e1.id(), e2.id());
        prop_assert_eq!(ctx.node_count(), n);
    }
}

/// Like [`arb_expr`] but with division, so random DAGs can produce
/// non-finite rows (mapped to `INFINITY` in batched evaluation).
fn arb_expr_div() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        (-100i32..100).prop_map(|k| E::K(k as f64 / 4.0)),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Ceil(a.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Select(
                c.into(),
                a.into(),
                b.into()
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A fused multi-root program's batched outputs are exactly — bit for
    /// bit — the per-root `Tape::eval_batch` results, with cross-root CSE,
    /// register reuse, mixed scalar/column bindings and non-finite rows in
    /// play. The workspace is reused across iterations, so register-pool
    /// recycling is stressed with varying programs and batch sizes.
    #[test]
    fn fused_program_matches_tapes_batched(
        roots in prop::collection::vec(arb_expr_div(), 1..6),
        xs in prop::collection::vec(-8.0f64..8.0, 1..16),
        y in -8.0f64..8.0,
        y_is_scalar in prop::sample::select(vec![true, false]),
    ) {
        let ctx = Context::new();
        let exprs: Vec<_> = roots.iter().map(|e| build(e, &ctx)).collect();
        let labels: Vec<String> = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        let labeled: Vec<(&str, _)> = labels
            .iter()
            .map(|l| l.as_str())
            .zip(exprs.iter().copied())
            .collect();
        let program = ctx.compile_program(&labeled);

        let n = xs.len();
        let mut batch = BatchBindings::new(n);
        batch.set_values("x", xs.clone());
        if y_is_scalar {
            batch.set_scalar("y", y);
        } else {
            batch.set_values("y", xs.iter().map(|v| v * 0.5 + y).collect());
        }

        let mut ws = EvalWorkspace::new();
        program.eval_batch(&batch, &mut ws).unwrap();
        for (i, &expr) in exprs.iter().enumerate() {
            let tape = ctx.compile(expr);
            let want = tape.eval_batch(&batch).unwrap();
            prop_assert!(
                ws.output(i) == &want[..],
                "root {i}: fused {:?} vs tape {:?}",
                ws.output(i),
                want
            );
        }
    }

    /// Scalar evaluation through the fused program agrees with per-root
    /// `Tape::eval` — same values bit for bit, and errors (non-finite
    /// results) on exactly the same roots.
    #[test]
    fn fused_program_matches_tapes_scalar(
        roots in prop::collection::vec(arb_expr_div(), 1..5),
        x in -8.0f64..8.0,
        y in -8.0f64..8.0,
    ) {
        let ctx = Context::new();
        let exprs: Vec<_> = roots.iter().map(|e| build(e, &ctx)).collect();
        let labels: Vec<String> = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        let labeled: Vec<(&str, _)> = labels
            .iter()
            .map(|l| l.as_str())
            .zip(exprs.iter().copied())
            .collect();
        let program = ctx.compile_program(&labeled);
        let fused_bindings: Vec<(&str, f64)> = [("x", x), ("y", y)]
            .into_iter()
            .filter(|(n, _)| program.symbols().index_of(n).is_some())
            .collect();
        let inputs = program.symbols().resolve_scalars(&fused_bindings).unwrap();

        for (i, &expr) in exprs.iter().enumerate() {
            let tape = ctx.compile(expr);
            match (
                program.eval_scalar_root(i, &inputs),
                eval_filtered(&tape, &[("x", x), ("y", y)]),
            ) {
                (Ok(a), Ok(b)) => prop_assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "root {i}: fused {a} vs tape {b}"
                ),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "root {i}: fused {a:?} vs tape {b:?}"),
            }
        }
    }
}

/// Deterministic check that rows dividing by zero map to `INFINITY` in
/// both the fused program and the individual tape, at matching rows.
#[test]
fn nonfinite_rows_map_to_infinity_in_fused_and_tape() {
    let ctx = Context::new();
    let x = ctx.symbol("x");
    let r0 = ctx.constant(1.0) / (x - 2.0);
    let r1 = x + 1.0;
    let program = ctx.compile_program(&[("r0", r0), ("r1", r1)]);

    let mut batch = BatchBindings::new(3);
    batch.set_values("x", vec![1.0, 2.0, 3.0]);
    let mut ws = EvalWorkspace::new();
    program.eval_batch(&batch, &mut ws).unwrap();

    assert_eq!(ws.output(0), &[1.0 / -1.0, f64::INFINITY, 1.0]);
    assert_eq!(ws.output(1), &[2.0, 3.0, 4.0]);
    let tape = ctx.compile(r0);
    assert_eq!(tape.eval_batch(&batch).unwrap(), ws.output(0));
}

/// Register-reuse stress: a long alternating chain forces many short-lived
/// intermediates through a small register pool; outputs must still match
/// the per-root tape bit for bit.
#[test]
fn register_reuse_stress_chain_matches_tape() {
    let ctx = Context::new();
    let x = ctx.symbol("x");
    let y = ctx.symbol("y");
    let mut e = x;
    for i in 1..=64 {
        let k = i as f64;
        e = (e * (y + k)).max(e - k).min(ctx.constant(1e12)) + x / k;
    }
    let program = ctx.compile_program(&[("chain", e), ("aux", e * 2.0 + y)]);
    assert!(
        program.num_regs() < program.len(),
        "chain must not need one register per slot"
    );

    let n = 64;
    let mut batch = BatchBindings::new(n);
    batch.set_values("x", (0..n).map(|i| i as f64 * 0.25 - 4.0).collect());
    batch.set_values("y", (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect());
    let mut ws = EvalWorkspace::new();
    program.eval_batch(&batch, &mut ws).unwrap();
    assert_eq!(
        ws.output(0),
        &ctx.compile(e).eval_batch(&batch).unwrap()[..]
    );
}
