//! Property-based tests of the symbolic engine's core invariants.

use mist_symbolic::{BatchBindings, CmpOp, Context};
use proptest::prelude::*;

/// A tiny expression AST we can generate and mirror both symbolically and
/// concretely.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    K(f64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Ceil(Box<E>),
    Select(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        (-100i32..100).prop_map(|k| E::K(k as f64 / 4.0)),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Ceil(a.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Select(
                c.into(),
                a.into(),
                b.into()
            )),
        ]
    })
}

fn build<'c>(e: &E, ctx: &'c Context) -> mist_symbolic::Expr<'c> {
    match e {
        E::X => ctx.symbol("x"),
        E::Y => ctx.symbol("y"),
        E::K(k) => ctx.constant(*k),
        E::Add(a, b) => build(a, ctx) + build(b, ctx),
        E::Sub(a, b) => build(a, ctx) - build(b, ctx),
        E::Mul(a, b) => build(a, ctx) * build(b, ctx),
        E::Min(a, b) => build(a, ctx).min(build(b, ctx)),
        E::Max(a, b) => build(a, ctx).max(build(b, ctx)),
        E::Ceil(a) => build(a, ctx).ceil(),
        E::Select(c, a, b) => {
            let cond = ctx.cmp(CmpOp::Gt, build(c, ctx), ctx.constant(0.0));
            ctx.select(cond, build(a, ctx), build(b, ctx))
        }
    }
}

fn reference(e: &E, x: f64, y: f64) -> f64 {
    match e {
        E::X => x,
        E::Y => y,
        E::K(k) => *k,
        E::Add(a, b) => reference(a, x, y) + reference(b, x, y),
        E::Sub(a, b) => reference(a, x, y) - reference(b, x, y),
        E::Mul(a, b) => reference(a, x, y) * reference(b, x, y),
        E::Min(a, b) => reference(a, x, y).min(reference(b, x, y)),
        E::Max(a, b) => reference(a, x, y).max(reference(b, x, y)),
        E::Ceil(a) => reference(a, x, y).ceil(),
        E::Select(c, a, b) => {
            if reference(c, x, y) > 0.0 {
                reference(a, x, y)
            } else {
                reference(b, x, y)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simplifying builders + compiled tape agree with a direct
    /// reference interpreter.
    #[test]
    fn tape_matches_reference(
        e in arb_expr(),
        x in -8.0f64..8.0,
        y in -8.0f64..8.0,
    ) {
        let ctx = Context::new();
        let expr = build(&e, &ctx);
        let tape = ctx.compile(expr);
        let got = tape.eval(&[("x", x), ("y", y)]).unwrap();
        let want = reference(&e, x, y);
        // Symbolic simplification may reassociate sums/products, so allow
        // an fp tolerance proportional to magnitude.
        let tol = 1e-9 * (1.0 + want.abs());
        prop_assert!((got - want).abs() <= tol, "got {got}, want {want}");
    }

    /// Batched evaluation equals scalar evaluation row by row.
    #[test]
    fn batch_rows_match_scalar(
        e in arb_expr(),
        xs in prop::collection::vec(-8.0f64..8.0, 1..20),
    ) {
        let ctx = Context::new();
        let expr = build(&e, &ctx);
        let tape = ctx.compile(expr);
        let ys: Vec<f64> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut batch = BatchBindings::new(xs.len());
        batch.set_values("x", xs.clone());
        batch.set_values("y", ys.clone());
        let out = tape.eval_batch(&batch).unwrap();
        for (i, o) in out.iter().enumerate() {
            let scalar = tape.eval(&[("x", xs[i]), ("y", ys[i])]).unwrap();
            prop_assert!((o - scalar).abs() <= 1e-12 * (1.0 + scalar.abs()));
        }
    }

    /// Hash-consing: building the same expression twice allocates no new
    /// nodes.
    #[test]
    fn interning_is_idempotent(e in arb_expr()) {
        let ctx = Context::new();
        let e1 = build(&e, &ctx);
        let n = ctx.node_count();
        let e2 = build(&e, &ctx);
        prop_assert_eq!(e1.id(), e2.id());
        prop_assert_eq!(ctx.node_count(), n);
    }
}
