//! End-to-end integration tests: tune → validate → execute across crates.

use mist::presets::{falcon, gpt3, llama, AttentionImpl, ModelSize};
use mist::{Baseline, MistSession, Platform};

fn session(model: mist::presets::ModelSpec, gpus: u32) -> MistSession {
    MistSession::builder(model, Platform::GcpL4, gpus)
        .max_grad_accum(16)
        .build()
}

#[test]
fn every_family_tunes_and_executes() {
    for model in [
        gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash),
        llama(ModelSize::B1_3, 2048, AttentionImpl::Flash),
        falcon(ModelSize::B1_3, 2048, AttentionImpl::Flash),
    ] {
        let name = model.name.clone();
        let s = session(model, 2);
        let outcome = s.tune(8).unwrap_or_else(|| panic!("{name}: no plan"));
        assert_eq!(outcome.plan.validate(), Ok(()), "{name}");
        let report = s.execute(&outcome);
        assert!(report.iteration_time > 0.0, "{name}");
        assert!(report.throughput(8) > 0.1, "{name}: implausible throughput");
    }
}

#[test]
fn plans_always_fit_gpu_memory_in_simulation() {
    let s = session(gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash), 4);
    for batch in [8u64, 32] {
        let outcome = s.tune(batch).expect("plan");
        let report = s.execute(&outcome);
        let budget = s.cluster().gpu.memory_bytes;
        for (i, &m) in report.stage_peak_mem.iter().enumerate() {
            // Allow the simulator's allocator overhead on top of the
            // analyzer's budget.
            assert!(
                m <= budget * 1.03,
                "B={batch} stage {i}: measured {m:.3e} exceeds budget {budget:.3e}"
            );
        }
    }
}

#[test]
fn mist_dominates_every_baseline_on_measured_throughput() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let mist_session = session(model.clone(), 4);
    let mist_out = mist_session.tune(16).expect("mist plan");
    let mist_thr = mist_session.execute(&mist_out).throughput(16);
    for b in [
        Baseline::MegatronLM,
        Baseline::DeepSpeed,
        Baseline::Aceso,
        Baseline::Alpa,
    ] {
        let s = MistSession::builder(model.clone(), Platform::GcpL4, 4)
            .space(b.space())
            .max_grad_accum(16)
            .build();
        if let Some(out) = s.tune(16) {
            let thr = s.execute(&out).throughput(16);
            assert!(
                mist_thr >= thr * 0.98,
                "{}: {thr:.2} beats Mist {mist_thr:.2}",
                b.name()
            );
        }
    }
}

#[test]
fn larger_clusters_give_more_throughput() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let mut prev = 0.0;
    for gpus in [2u32, 4, 8] {
        let s = session(model.clone(), gpus);
        let out = s.tune(32).expect("plan");
        let thr = s.execute(&out).throughput(32);
        assert!(
            thr > prev,
            "{gpus} GPUs: {thr:.2} not faster than {prev:.2}"
        );
        prev = thr;
    }
}

#[test]
fn a100_outperforms_l4_per_gpu() {
    let model_l4 = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let model_a100 = gpt3(ModelSize::B2_6, 4096, AttentionImpl::Flash);
    let l4 = MistSession::builder(model_l4, Platform::GcpL4, 4)
        .max_grad_accum(16)
        .build();
    let a100 = MistSession::builder(model_a100, Platform::AwsA100, 4)
        .max_grad_accum(16)
        .build();
    let tl4 = l4.execute(&l4.tune(16).unwrap()).throughput(16) * 2048.0;
    let ta100 = a100.execute(&a100.tune(16).unwrap()).throughput(16) * 4096.0;
    // Per Table 4, A100 runs twice the sequence length; in *token*
    // throughput it should be at least 2x faster than L4.
    assert!(
        ta100 > 2.0 * tl4,
        "a100 {ta100:.0} tok/s vs l4 {tl4:.0} tok/s"
    );
}

#[test]
fn flash_attention_speeds_up_and_saves_memory() {
    let flash = session(gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash), 4);
    let std = session(gpt3(ModelSize::B2_6, 2048, AttentionImpl::Standard), 4);
    let of = flash.tune(16).unwrap();
    let os = std.tune(16).unwrap();
    let tf = flash.execute(&of).throughput(16);
    let ts = std.execute(&os).throughput(16);
    assert!(tf > ts, "flash {tf:.2} vs std {ts:.2}");
}

#[test]
fn predicted_iteration_tracks_simulated() {
    // The §6.6 claim at integration level: prediction errors stay small
    // across models and batch sizes.
    for model in [
        gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash),
        llama(ModelSize::B2_6, 2048, AttentionImpl::Flash),
    ] {
        let gpus = if model.name.contains("1.3") { 2 } else { 4 };
        let s = session(model.clone(), gpus);
        let report = s.accuracy_report(&[8, 16]);
        assert!(
            report.mean_time_error < 0.15,
            "{}: time error {:.1}%",
            model.name,
            report.mean_time_error * 100.0
        );
        assert!(
            report.mean_mem_error < 0.10,
            "{}: memory error {:.1}%",
            model.name,
            report.mean_mem_error * 100.0
        );
    }
}

#[test]
fn global_batch_arithmetic_is_exact() {
    let s = session(gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash), 4);
    for batch in [4u64, 12, 24, 48] {
        if let Some(out) = s.tune(batch) {
            assert_eq!(out.plan.global_batch, batch);
            for st in &out.plan.stages {
                assert_eq!(
                    st.candidate.micro_batch * st.candidate.dp as u64 * out.plan.grad_accum as u64,
                    batch
                );
            }
        }
    }
}
