//! Thread-count determinism of the full tuner.
//!
//! The pool's ordered joins, the driver's frontier-key dedup, and the
//! branch-and-bound tie-breaks together promise: `--threads N` changes
//! wall-clock only. This test runs the complete tune at 1, 2 and 8
//! threads on the GPT-3 6.7B workload and asserts the serialized
//! [`TuneOutcome`] is byte-identical once wall-clock-only fields are
//! stripped.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{MistSession, Platform, SearchSpace};
use serde_json::Value;

/// Fields that legitimately vary run-to-run (timing) or with the thread
/// count (pool scheduling stats), at any depth.
const TIMING_FIELDS: &[&str] = &[
    "elapsed_secs",
    "intra_secs",
    "inter_secs",
    "tuner.elapsed_secs",
    "tuner.intra_secs",
    "tuner.inter_secs",
    "pool.workers",
    "pool.tasks_stolen",
    "pool.tasks_executed",
];

fn strip_timing(v: &mut Value) {
    match v {
        Value::Object(fields) => {
            fields.retain(|(k, _)| !TIMING_FIELDS.contains(&k.as_str()));
            for (_, val) in fields {
                strip_timing(val);
            }
        }
        Value::Array(items) => {
            for item in items {
                strip_timing(item);
            }
        }
        _ => {}
    }
}

fn tune_json(threads: usize) -> String {
    mist_pool::set_global_threads(threads);
    let model = gpt3(ModelSize::B6_7, 2048, AttentionImpl::Flash);
    let session = MistSession::builder(model, Platform::GcpL4, 8)
        .space(SearchSpace::mist())
        .max_grad_accum(8)
        .build();
    let outcome = session.tune(64).expect("6.7B on 8 GPUs must be tunable");
    let mut v = serde_json::to_value(&outcome).expect("serialize outcome");
    strip_timing(&mut v);
    serde_json::to_string_pretty(&v).expect("stringify outcome")
}

#[test]
fn tune_outcome_is_byte_identical_across_thread_counts() {
    let reference = tune_json(1);
    for threads in [2usize, 8] {
        let got = tune_json(threads);
        assert!(
            got == reference,
            "--threads {threads} changed the tune outcome"
        );
    }
    mist_pool::set_global_threads(mist_pool::default_threads());
}
