//! Property-based validation of the MILP solver against brute force.

use mist_milp::{partition_min_max, solve_milp, ConstraintOp, Lp, Milp, MilpOptions, MilpOutcome};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small random knapsacks: branch-and-bound equals exhaustive search.
    #[test]
    fn knapsack_matches_bruteforce(
        values in prop::collection::vec(1u32..20, 2..9),
        weights in prop::collection::vec(1u32..10, 2..9),
        cap in 5u32..30,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];

        // Brute force over all subsets.
        let mut best = 0u32;
        for mask in 0u32..(1 << n) {
            let (mut v, mut w) = (0u32, 0u32);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= cap {
                best = best.max(v);
            }
        }

        let mut lp = Lp::new(n, values.iter().map(|&v| -(v as f64)).collect());
        lp.constrain(
            weights.iter().enumerate().map(|(i, &w)| (i, w as f64)).collect(),
            ConstraintOp::Le,
            cap as f64,
        );
        for i in 0..n {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let milp = Milp { lp, integer_vars: (0..n).collect() };
        match solve_milp(&milp, MilpOptions::default()) {
            MilpOutcome::Optimal { objective, .. } => {
                prop_assert!(
                    (-objective - best as f64).abs() < 1e-6,
                    "milp {} vs brute {best}", -objective
                );
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// partition_min_max equals brute-force enumeration of splits.
    #[test]
    fn partition_matches_bruteforce(
        items in 2u32..14,
        groups in 1u32..5,
        speeds in prop::collection::vec(0.25f64..4.0, 5),
    ) {
        prop_assume!(groups <= items);
        let cost = |g: u32, n: u32| n as f64 * speeds[g as usize % speeds.len()];
        let dp = partition_min_max(items, groups, cost);

        // Brute force.
        fn brute(
            remaining: u32,
            group: u32,
            groups: u32,
            cost: &dyn Fn(u32, u32) -> f64,
        ) -> f64 {
            if group + 1 == groups {
                return cost(group, remaining);
            }
            let mut best = f64::INFINITY;
            for take in 1..=(remaining - (groups - group - 1)) {
                let c = cost(group, take).max(brute(remaining - take, group + 1, groups, cost));
                best = best.min(c);
            }
            best
        }
        let want = brute(items, 0, groups, &cost);
        let (sizes, got) = dp.expect("feasible");
        prop_assert!((got - want).abs() < 1e-9, "dp {got} vs brute {want}");
        prop_assert_eq!(sizes.iter().sum::<u32>(), items);
    }
}
