//! End-to-end observability test: drives the `mist-cli tune` command path
//! in-process (via `mist::cli::run`) with `--trace`, then validates the
//! emitted Chrome Trace Event JSON — well-formed, B/E balanced per track,
//! and containing both producers (tuner phase timeline + pipeline Gantt).

use std::collections::BTreeMap;

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn str_of(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        _ => panic!("expected string, got {v:?}"),
    }
}

#[test]
fn cli_tune_trace_end_to_end() {
    let trace_path =
        std::env::temp_dir().join(format!("mist_telemetry_e2e_{}.json", std::process::id()));
    let argv: Vec<String> = [
        "tune",
        "--model",
        "gpt3-1.3b",
        "--platform",
        "l4",
        "--gpus",
        "4",
        "--batch",
        "32",
        "--seed",
        "11",
        "--execute",
        "--json",
        "--trace",
        trace_path.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(mist::cli::run(&argv), 0, "mist-cli tune must succeed");

    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    std::fs::remove_file(&trace_path).ok();
    let doc: Value = serde_json::from_str(&text).expect("trace is valid JSON");
    assert_eq!(
        get(&doc, "displayTimeUnit").map(str_of),
        Some("ms"),
        "Chrome trace header"
    );
    let Some(Value::Array(events)) = get(&doc, "traceEvents") else {
        panic!("traceEvents array missing");
    };
    assert!(!events.is_empty());

    // Walk every event: metadata names the tracks, B/E must nest per
    // (pid, tid) with non-decreasing timestamps.
    let mut processes: BTreeMap<i64, String> = BTreeMap::new();
    let mut threads: BTreeMap<(i64, i64), String> = BTreeMap::new();
    let mut depth: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut span_names: Vec<String> = Vec::new();
    for e in events {
        let ph = get(e, "ph").map(str_of).expect("ph");
        let pid = get(e, "pid").and_then(Value::as_i64).expect("pid");
        let tid = get(e, "tid").and_then(Value::as_i64).expect("tid");
        match ph {
            "M" => match get(e, "name").map(str_of).expect("name") {
                "process_name" => {
                    let name = str_of(get(get(e, "args").unwrap(), "name").unwrap());
                    processes.insert(pid, name.to_string());
                }
                "thread_name" => {
                    let name = str_of(get(get(e, "args").unwrap(), "name").unwrap());
                    threads.insert((pid, tid), name.to_string());
                }
                other => panic!("unexpected metadata record {other}"),
            },
            "B" | "E" => {
                let ts = get(e, "ts").and_then(Value::as_f64).expect("ts");
                let key = (pid, tid);
                let last = last_ts.insert(key, ts).unwrap_or(f64::NEG_INFINITY);
                assert!(ts >= last, "timestamps regress on track {key:?}");
                let d = depth.entry(key).or_insert(0);
                if ph == "B" {
                    *d += 1;
                    span_names.push(get(e, "name").map(str_of).unwrap().to_string());
                } else {
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B on track {key:?}");
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for (key, d) in &depth {
        assert_eq!(*d, 0, "unbalanced B/E on track {key:?}");
    }

    // Producer 1: the tuner phase timeline under the "mist-tuner" process.
    assert_eq!(processes.get(&0).map(String::as_str), Some("mist-tuner"));
    for phase in [
        "session.calibrate",
        "tuner.tune",
        "tuner.outer",
        "intra.frontier",
    ] {
        assert!(
            span_names.iter().any(|n| n == phase),
            "tuner timeline lacks `{phase}` spans (saw {span_names:?})"
        );
    }

    // Producer 2: one process per pipeline stage, with the four stream
    // lanes as named threads.
    let stage_pids: Vec<i64> = processes
        .iter()
        .filter(|(_, name)| name.starts_with("stage "))
        .map(|(pid, _)| *pid)
        .collect();
    assert!(!stage_pids.is_empty(), "no pipeline-stage processes");
    for pid in &stage_pids {
        let lanes: Vec<&str> = threads
            .iter()
            .filter(|((p, _), _)| p == pid)
            .map(|(_, name)| name.as_str())
            .collect();
        assert_eq!(lanes, mist_sim::STREAM_LANES.to_vec(), "lanes of pid {pid}");
    }
    // The Gantt must actually contain work on compute and NCCL lanes.
    for lane in ["forward", "backward"] {
        assert!(span_names.iter().any(|n| n == lane), "no `{lane}` slices");
    }
}
