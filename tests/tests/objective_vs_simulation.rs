//! Property-style cross-validation: the Eq. 1 pipeline objective against
//! the event-level 1F1B simulator on randomized synthetic pipelines.

use mist::{mist_objective, simulate, GroundTruth, IterationSchedule, Platform, StageStreams};
use mist_schedule::{StageMemory, StageTask};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn compute_only_task(fwd: f64, bwd: f64) -> StageTask {
    StageTask {
        fwd: [fwd, 0.0, 0.0, 0.0],
        bwd: [bwd, 0.0, 0.0, 0.0],
        first_extra: [0.0; 4],
        last_extra: [0.0; 4],
        mem: StageMemory {
            resident: 0.0,
            act_per_mb: 1.0,
            transient_fwd: 0.0,
            transient_bwd: 0.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For compute-only pipelines without extras, Eq. 1 must match the
    /// simulator exactly when one stage dominates, and stay within the
    /// fill/drain approximation otherwise.
    #[test]
    fn eq1_approximates_simulated_pipelines(
        seed in 0u64..1000,
        s in 1usize..6,
        g in 1u32..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<StageTask> = (0..s)
            .map(|_| {
                let f = rng.gen_range(0.5..2.0);
                compute_only_task(f, 2.0 * f)
            })
            .collect();
        let streams: Vec<StageStreams> = tasks
            .iter()
            .map(|t| StageStreams { t: t.fwd[0] + t.bwd[0], d: 0.0 })
            .collect();
        let predicted = mist_objective(&streams, g);
        let sched = IterationSchedule { grad_accum: g, stages: tasks };
        let sim = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4));
        // Eq. 1 is an approximation: with few microbatches and
        // heterogeneous stages it can over- or under-shoot by the
        // fill/drain slack (up to roughly one stage round each way).
        let rel = (predicted - sim.iteration_time) / sim.iteration_time;
        prop_assert!(rel < 0.20, "overestimate {rel:.4}");
        prop_assert!(rel > -0.35, "underestimate {rel:.4}");
        // Once microbatches dominate warmup (G >> S), the bottleneck term
        // dominates and the approximation must tighten.
        if g as usize >= 6 * s {
            prop_assert!(rel.abs() < 0.10, "large-G error {rel:.4}");
        }
    }

    /// Balanced pipelines are predicted exactly.
    #[test]
    fn balanced_pipelines_are_exact(
        s in 1usize..8,
        g in 1u32..16,
        t in 0.1f64..5.0,
    ) {
        let tasks: Vec<StageTask> = (0..s).map(|_| compute_only_task(t, 2.0 * t)).collect();
        let streams: Vec<StageStreams> =
            (0..s).map(|_| StageStreams { t: 3.0 * t, d: 0.0 }).collect();
        let predicted = mist_objective(&streams, g);
        let sched = IterationSchedule { grad_accum: g, stages: tasks };
        let sim = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4));
        let rel = (predicted - sim.iteration_time).abs() / sim.iteration_time;
        prop_assert!(rel < 1e-9, "balanced pipeline must be exact, off by {rel}");
    }

    /// Simulated time is monotone in any stage's compute time.
    #[test]
    fn simulation_is_monotone_in_stage_cost(
        s in 1usize..5,
        g in 1u32..8,
        bump_stage in 0usize..5,
    ) {
        let bump_stage = bump_stage % s;
        let tasks: Vec<StageTask> = (0..s).map(|_| compute_only_task(1.0, 2.0)).collect();
        let sched = IterationSchedule { grad_accum: g, stages: tasks.clone() };
        let base = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
        let mut slower = tasks;
        slower[bump_stage].fwd[0] *= 1.5;
        let sched2 = IterationSchedule { grad_accum: g, stages: slower };
        let bumped = simulate(&sched2, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
        prop_assert!(bumped >= base - 1e-12);
    }
}

#[test]
fn first_extras_hide_in_fill_bubbles() {
    // Stage 1's extras fit inside the fill bubble created by stage 0 —
    // the simulated iteration must not grow.
    let g = 8;
    let base: Vec<StageTask> = (0..2).map(|_| compute_only_task(1.0, 2.0)).collect();
    let sched = IterationSchedule {
        grad_accum: g,
        stages: base.clone(),
    };
    let t_base = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
    let mut with_extra = base;
    with_extra[1].first_extra = [0.9, 0.0, 0.0, 0.0]; // < stage 0 fwd time.
    let sched2 = IterationSchedule {
        grad_accum: g,
        stages: with_extra,
    };
    let t_extra = simulate(&sched2, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
    assert!(
        (t_extra - t_base).abs() < 1e-9,
        "hidden extra changed time: {t_base} -> {t_extra}"
    );
}

#[test]
fn stage0_extras_are_fully_exposed() {
    let g = 4;
    let base: Vec<StageTask> = (0..2).map(|_| compute_only_task(1.0, 2.0)).collect();
    let sched = IterationSchedule {
        grad_accum: g,
        stages: base.clone(),
    };
    let t_base = simulate(&sched, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
    let mut with_extra = base;
    with_extra[0].first_extra = [0.7, 0.0, 0.0, 0.0];
    let sched2 = IterationSchedule {
        grad_accum: g,
        stages: with_extra,
    };
    let t_extra = simulate(&sched2, &GroundTruth::noiseless(Platform::GcpL4)).iteration_time;
    assert!(
        (t_extra - (t_base + 0.7)).abs() < 1e-9,
        "stage-0 extra must add fully: {t_base} -> {t_extra}"
    );
}
