//! Planner-service integration: property-based fingerprint
//! canonicality, plan-cache persistence with real tune outcomes, and
//! warm-start byte-identity across a daemon restart (i.e. through an
//! f64 JSONL round-trip of the cached frontiers).

use std::fs;

use mist_service::{canonical_fingerprint, PlanCache, PlanRequest, PlannerService};
use proptest::prelude::*;
use serde::Value;

// --- fingerprint canonicality -------------------------------------------

/// Random JSON values: scalars of every kind, nested arrays/objects.
fn arb_value() -> BoxedStrategy<Value> {
    let key =
        (0u32..26, 1usize..5).prop_map(|(c, n)| char::from(b'a' + c as u8).to_string().repeat(n));
    let scalar = prop_oneof![
        Just(Value::Null),
        (0u32..2).prop_map(|b| Value::Bool(b == 1)),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e9f64..1.0e9).prop_map(Value::Float),
        key.clone().prop_map(Value::Str),
    ];
    scalar
        .prop_recursive(3, 24, 4, move |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                prop::collection::vec((key.clone(), inner), 0..4).prop_map(Value::Object),
            ]
        })
        .boxed()
}

/// Recursively reverses every object's field order — a nontrivial key
/// permutation that must not change the fingerprint.
fn reverse_keys(v: &Value) -> Value {
    match v {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .rev()
                .map(|(k, item)| (k.clone(), reverse_keys(item)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(reverse_keys).collect()),
        other => other.clone(),
    }
}

/// Perturbs the first integer leaf (depth-first). Returns false when the
/// value has no integer leaf to perturb.
fn bump_first_int(v: &mut Value) -> bool {
    match v {
        Value::Int(i) => {
            *i = i.wrapping_add(1);
            true
        }
        Value::Array(items) => items.iter_mut().any(bump_first_int),
        Value::Object(fields) => fields.iter_mut().any(|(_, item)| bump_first_int(item)),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Key order is canonical: any recursive permutation of object
    /// fields fingerprints identically.
    #[test]
    fn fingerprint_ignores_key_order(v in arb_value()) {
        prop_assert_eq!(
            canonical_fingerprint(&v),
            canonical_fingerprint(&reverse_keys(&v))
        );
    }

    /// Every scalar matters: perturbing a single integer leaf changes
    /// the fingerprint, as does grafting a fresh field onto an object.
    #[test]
    fn fingerprint_sees_single_field_perturbations(v in arb_value()) {
        let base = canonical_fingerprint(&v);

        let mut bumped = v.clone();
        if bump_first_int(&mut bumped) {
            prop_assert!(
                base != canonical_fingerprint(&bumped),
                "bumping an int leaf must change the fingerprint"
            );
        }

        if let Value::Object(fields) = &v {
            let mut grafted = fields.clone();
            grafted.push(("zzz-perturbation".to_owned(), Value::Int(0)));
            prop_assert!(
                base != canonical_fingerprint(&Value::Object(grafted)),
                "grafting a field must change the fingerprint"
            );
        }
    }
}

// --- cache persistence and warm-start equivalence ------------------------

fn plan_req(batch: u64) -> PlanRequest {
    PlanRequest {
        model: "gpt3-1.3b".to_owned(),
        gpus: 2,
        batch,
        max_grad_accum: 8,
        ..PlanRequest::default()
    }
}

fn result_json(v: &Value) -> String {
    let Value::Object(fields) = v else {
        panic!("response must be an object: {v:?}")
    };
    serde_json::to_string(serde::get_field(fields, "result").expect("result field")).unwrap()
}

fn work_source(v: &Value) -> String {
    let Value::Object(fields) = v else {
        panic!("response must be an object: {v:?}")
    };
    let Value::Object(work) = serde::get_field(fields, "work").expect("work field") else {
        panic!("work must be an object")
    };
    match serde::get_field(work, "source").expect("source field") {
        Value::Str(s) => s.clone(),
        other => panic!("source must be a string: {other:?}"),
    }
}

#[test]
fn cache_survives_restart_with_byte_identical_plans() {
    let dir = std::env::temp_dir().join(format!("mist-planner-it-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("plans.jsonl");

    // Session 1: a cold tune and an in-session warm-start, persisted.
    let planner = PlannerService::new(PlanCache::open(&cache_path).unwrap());
    let cold8 = planner.plan(&plan_req(8));
    assert_eq!(work_source(&cold8), "cold");
    let warm16 = planner.plan(&plan_req(16));
    assert_eq!(work_source(&warm16), "warm");
    drop(planner);

    // The persisted cache is byte-stable under load → save.
    let first = fs::read_to_string(&cache_path).unwrap();
    PlanCache::open(&cache_path).unwrap().save().unwrap();
    let second = fs::read_to_string(&cache_path).unwrap();
    assert_eq!(first, second, "cache load → save must be byte-identical");

    // Session 2 (restart): exact hits reproduce both cached results.
    let planner = PlannerService::new(PlanCache::open(&cache_path).unwrap());
    let hit8 = planner.plan(&plan_req(8));
    assert_eq!(work_source(&hit8), "hit");
    assert_eq!(result_json(&cold8), result_json(&hit8));
    let hit16 = planner.plan(&plan_req(16));
    assert_eq!(work_source(&hit16), "hit");
    assert_eq!(result_json(&warm16), result_json(&hit16));

    // A fresh batch warm-starts from the *reloaded* frontiers — the
    // exported Pareto points went through an f64 JSONL round-trip — and
    // must still match a cache-bypassing cold tune bit for bit.
    let warm24 = planner.plan(&plan_req(24));
    assert_eq!(work_source(&warm24), "warm");
    let mut bypass = plan_req(24);
    bypass.no_cache = true;
    let cold24 = planner.plan(&bypass);
    assert_eq!(work_source(&cold24), "cold");
    assert_eq!(
        result_json(&warm24),
        result_json(&cold24),
        "reloaded warm-start must be byte-identical to a cold tune"
    );

    // A budget delta is family-compatible, so seeding is allowed where
    // sound — and regardless of whether any frontier was reusable, the
    // answer must equal a cold tune at that budget.
    let mut tight = plan_req(8);
    tight.budget_gib = Some(18.0);
    let tight_resp = planner.plan(&tight);
    let mut tight_cold = tight.clone();
    tight_cold.no_cache = true;
    let tight_cold_resp = planner.plan(&tight_cold);
    assert_eq!(
        result_json(&tight_resp),
        result_json(&tight_cold_resp),
        "budget-delta answers must be byte-identical to cold tuning"
    );

    fs::remove_dir_all(&dir).ok();
}
