//! Integration tests pinning the paper's *qualitative* claims at small
//! scale — the fast-running core of what EXPERIMENTS.md reports in full.

use mist::presets::{falcon, gpt3, AttentionImpl, ModelSize};
use mist::{
    CkptMode, ClusterSpec, DeviceMesh, GpuSpec, MistSession, OpCostDb, Platform, SearchSpace,
    StageAnalyzer, StageCandidate, StageConfigValues, StageRole,
};

/// §3.1 / Fig. 2(a): with standard attention at long sequence length,
/// parallelism alone OOMs where full checkpointing fits.
#[test]
fn parallelism_only_ooms_where_ckpt_fits() {
    let model = gpt3(ModelSize::B2_6, 4096, AttentionImpl::Standard);
    let bare = SearchSpace {
        ckpt: CkptMode::None,
        zero_levels: vec![0],
        offload_grid: vec![],
        offload_enabled: [false; 4],
        ..SearchSpace::mist()
    };
    let full = SearchSpace {
        ckpt: CkptMode::Full,
        ..bare.clone()
    };
    let s_bare = MistSession::builder(model.clone(), Platform::GcpL4, 4)
        .space(bare)
        .max_grad_accum(8)
        .build();
    let s_full = MistSession::builder(model, Platform::GcpL4, 4)
        .space(full)
        .max_grad_accum(8)
        .build();
    assert!(s_bare.tune(8).is_none(), "Fig 2a: must OOM");
    assert!(s_full.tune(8).is_some(), "Fig 2b: full ckpt must fit");
}

/// Falcon's parallel attention/MLP halves TP all-reduces (§6.1): under
/// the same TP degree its per-layer communication must be lower than
/// GPT's.
#[test]
fn falcon_halves_tp_communication() {
    let cluster = ClusterSpec::for_gpu_count(Platform::GcpL4, 4);
    let db = OpCostDb::new(GpuSpec::l4());
    let cand = StageCandidate {
        mesh: DeviceMesh::new(1, 4),
        dp: 1,
        tp: 4,
        micro_batch: 2,
        role: StageRole::Only,
    };
    let cfg = StageConfigValues::plain(16, 1);
    let g = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let f = falcon(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let pg = StageAnalyzer::new(&g, &cluster, &db)
        .analyze(&cand)
        .eval_point(&cfg);
    let pf = StageAnalyzer::new(&f, &cluster, &db)
        .analyze(&cand)
        .eval_point(&cfg);
    let gpt_nccl = pg.fwd[1] + pg.bwd[1];
    let falcon_nccl = pf.fwd[1] + pf.bwd[1];
    assert!(
        falcon_nccl < 0.65 * gpt_nccl,
        "falcon {falcon_nccl:.4}s vs gpt {gpt_nccl:.4}s"
    );
}

/// §6.2's hardware discussion: Mist's relative gain over the restricted
/// Megatron-style space is at least as large on the bandwidth-starved L4
/// cluster as on the NVLink A100 cluster.
#[test]
fn l4_benefits_at_least_as_much_as_a100() {
    let run = |platform: Platform, seq: u64| {
        let model = gpt3(ModelSize::B2_6, seq, AttentionImpl::Flash);
        let mist = MistSession::builder(model.clone(), platform, 4)
            .max_grad_accum(16)
            .build();
        let mega = MistSession::builder(model, platform, 4)
            .space(SearchSpace::megatron())
            .max_grad_accum(16)
            .build();
        let tm = mist.execute(&mist.tune(32).unwrap()).throughput(32);
        let tg = mega.execute(&mega.tune(32).unwrap()).throughput(32);
        tm / tg
    };
    let l4 = run(Platform::GcpL4, 2048);
    let a100 = run(Platform::AwsA100, 4096);
    assert!(l4 >= a100 * 0.9, "l4 gain {l4:.2} vs a100 gain {a100:.2}");
    assert!(l4 >= 1.0, "mist must not lose to megatron on L4");
}

/// Shortcoming #1: an overlap-unaware predictor (Aceso-style) mispredicts
/// the runtime of overlap-heavy plans — its serial-sum estimate exceeds
/// both Mist's prediction and the simulated truth.
#[test]
fn overlap_unaware_prediction_overshoots() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let session = MistSession::builder(model, Platform::GcpL4, 4)
        .max_grad_accum(8)
        .build();
    let outcome = session.tune(16).expect("plan");
    // Pick a plan that uses offloading (overlap matters).
    let p = &outcome.stage_points[0];
    let serial: f64 = p.fwd.iter().sum::<f64>() + p.bwd.iter().sum::<f64>();
    let overlapped = mist::stage_times(p, session.interference()).t;
    assert!(
        serial >= overlapped,
        "serial {serial} overlapped {overlapped}"
    );
}

/// The search-space inclusion invariant behind Fig. 13: enlarging the
/// space never reduces measured throughput.
#[test]
fn ladder_is_monotone_at_small_scale() {
    let model = gpt3(ModelSize::B2_6, 2048, AttentionImpl::Flash);
    let mut prev = 0.0;
    for space in mist::SearchSpace::fig13_ladder() {
        let name = space.name.clone();
        let s = MistSession::builder(model.clone(), Platform::GcpL4, 4)
            .space(space)
            .max_grad_accum(8)
            .build();
        let thr = s
            .tune(16)
            .map(|o| s.execute(&o).throughput(16))
            .unwrap_or(0.0);
        assert!(
            thr >= prev * 0.97,
            "{name}: {thr:.2} worse than previous space {prev:.2}"
        );
        prev = prev.max(thr);
    }
}
