//! The calibration loop: simulator benchmarks → interference fitting →
//! better predictions (paper §5.2.2 on our synthetic substrate).

use mist::{benchmark_interference, fit_interference, GroundTruth, InterferenceModel, Platform};

#[test]
fn fitted_model_predicts_hidden_truth_better_than_priors() {
    for platform in [Platform::GcpL4, Platform::AwsA100] {
        let truth = GroundTruth::noiseless(platform);
        let samples = benchmark_interference(platform, 400, 17);
        let prior = match platform {
            Platform::GcpL4 => InterferenceModel::pcie_defaults(),
            Platform::AwsA100 => InterferenceModel::nvlink_defaults(),
        };
        let (fitted, report) = fit_interference(&prior, &samples, 3000, 23);
        assert!(report.final_error <= report.initial_error);
        // Holdout check against the hidden law.
        let holdout = benchmark_interference(platform, 200, 991);
        let err = |m: &InterferenceModel| {
            holdout
                .iter()
                .map(|(x, y)| (m.predict(*x) - y).abs() / y)
                .sum::<f64>()
                / holdout.len() as f64
        };
        let e_prior = err(&prior);
        let e_fitted = err(&fitted);
        assert!(
            e_fitted <= e_prior,
            "{platform:?}: fitted {e_fitted:.4} vs prior {e_prior:.4}"
        );
        assert!(e_fitted < 0.05, "{platform:?}: fitted error {e_fitted:.4}");
        let _ = truth;
    }
}

#[test]
fn benchmarks_are_deterministic_per_seed() {
    let a = benchmark_interference(Platform::GcpL4, 50, 5);
    let b = benchmark_interference(Platform::GcpL4, 50, 5);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1, y.1);
    }
    let c = benchmark_interference(Platform::GcpL4, 50, 6);
    assert!(a.iter().zip(&c).any(|(x, y)| x.0 != y.0));
}
