//! Round-trip serialization of plans and reports — the JSON surface that
//! `mist-cli --json` and the results files expose.

use mist::presets::{gpt3, AttentionImpl, ModelSize};
use mist::{MistSession, Platform, TrainingPlan};

#[test]
fn training_plan_json_round_trips() {
    let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
    let session = MistSession::builder(model, Platform::GcpL4, 2)
        .max_grad_accum(8)
        .build();
    let outcome = session.tune(8).expect("plan");
    let json = serde_json::to_string(&outcome.plan).expect("serialize");
    let back: TrainingPlan = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, outcome.plan);
    assert_eq!(back.validate(), Ok(()));
}

#[test]
fn sim_report_serializes() {
    let model = gpt3(ModelSize::B1_3, 2048, AttentionImpl::Flash);
    let session = MistSession::builder(model, Platform::GcpL4, 2)
        .max_grad_accum(8)
        .build();
    let outcome = session.tune(8).expect("plan");
    let report = session.execute(&outcome);
    let json = serde_json::to_string(&report).expect("serialize");
    assert!(json.contains("iteration_time"));
    let back: mist::SimReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.iteration_time, report.iteration_time);
}
